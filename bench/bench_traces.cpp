//===- bench/bench_traces.cpp - Regenerate Figs. 3 and 6 (E2, E3) -----------------===//
//
// Prints the Isla traces the paper shows as figures:
//   Fig. 3 — add sp, sp, #0x40 (opcode 0x910103ff) under EL=2, SP=1;
//   Fig. 6 — beq -16 under the default flag-register assumptions, showing
//            the cases/assert branching structure.
//
// Then measures trace generation per study across the two path-exploration
// engines (replay re-executes the shared prefix of every path; the
// snapshot engine checkpoints and restores it) and across cache
// temperature (cold execution vs. a warm read from the persistent trace
// cache, which is on by default here), and emits the results as
// machine-readable JSON into BENCH_trace_gen.json.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "cache/TraceCache.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "sail/Parser.h"
#include "validation/Validator.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace islaris;
using islaris::itl::Reg;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

isla::Assumptions el2Assumptions() {
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  return A;
}

struct Study {
  std::string Name;
  isla::OpcodeSpec Op;
  isla::Assumptions Assume;
};

struct Measurement {
  unsigned Paths = 0, Events = 0;
  uint64_t ReplayStmts = 0, SnapStmts = 0, SnapSkipped = 0;
  unsigned HelperMemoHits = 0;
  double ReplayWall = 0, ColdWall = 0, WarmWall = 0;
  bool Identical = false; ///< Replay and snapshot traces byte-identical.
  bool WarmFromDisk = false;
};

/// One row of the path-merging study: enumeration (snapshot) vs the merge
/// engine over N independent symbolic branches.
struct MergeMeasurement {
  unsigned Branches = 0;
  unsigned SnapPaths = 0, MergePaths = 0;
  uint64_t SnapStmts = 0, MergeStmts = 0;
  unsigned PathsMerged = 0, MergeFallbacks = 0;
  uint64_t IteTerms = 0;
  double SnapWall = 0, MergeWall = 0;
};

/// A mini-Sail model whose decode runs \p N independent both-feasible
/// branches (one per symbolic opcode bit): enumeration explores a tree of
/// 2^N leaves, merging collapses each fork at its join and re-reaches the
/// next one exactly once — the super-linear separation this study measures.
std::string manyBranchModelSource(unsigned N) {
  std::string S;
  for (unsigned I = 0; I <= N; ++I)
    S += "register X" + std::to_string(I) + " : bits(64)\n";
  S += "register _PC : bits(64)\n\n";
  S += "function decode(opcode : bits(32)) -> unit = {\n";
  for (unsigned I = 0; I < N; ++I) {
    std::string Src = "X" + std::to_string(I);
    std::string Dst = "X" + std::to_string(I + 1);
    S += "  if opcode[" + std::to_string(I) + "] == 0b1 then { " + Dst +
         " = " + Src + " + " + Src + "; } else { " + Dst + " = " + Src +
         "; };\n";
  }
  S += "  _PC = _PC + 0x0000000000000004;\n}\n";
  return S;
}

} // namespace

int main() {
  const sail::Model &M = models::aarch64Model();

  std::printf("=== Fig. 3: add sp, sp, #0x40 (opcode 0x910103ff), "
              "EL=2 SP=1 ===\n\n");
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  isla::ExecResult R1 =
      Ex.run(isla::OpcodeSpec::concrete(0x910103ffu), el2Assumptions());
  if (!R1.Ok) {
    std::fprintf(stderr, "error: %s\n", R1.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R1.Trace.toString().c_str());
  std::printf("events: %u  paths: %u (linear, as in the figure)\n\n",
              R1.Stats.Events, R1.Stats.Paths);

  std::printf("=== Fig. 6: beq -16 (condition-flag branching) ===\n\n");
  uint32_t Beq = arch::aarch64::enc::bcond(arch::aarch64::Cond::EQ, -16);
  isla::ExecResult R2 =
      Ex.run(isla::OpcodeSpec::concrete(Beq), isla::Assumptions());
  if (!R2.Ok) {
    std::fprintf(stderr, "error: %s\n", R2.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R2.Trace.toString().c_str());
  std::printf("events: %u  paths: %u  (two cases guarded by asserts on "
              "the branch condition, as in the figure)\n\n",
              R2.Stats.Events, R2.Stats.Paths);

  //===------------------------------------------------------------------===//
  // Engine and cache-temperature measurement, emitted as JSON.
  //===------------------------------------------------------------------===//

  constexpr uint32_t AddSp = 0x91000000u | (0x40u << 10);
  std::vector<Study> Studies;
  Studies.push_back(
      {"add-sp-imm (EL2)", isla::OpcodeSpec::concrete(0x910103ffu),
       el2Assumptions()});
  Studies.push_back(
      {"beq-minus-16", isla::OpcodeSpec::concrete(Beq),
       isla::Assumptions()});
  Studies.push_back(
      {"add-sp-symbolic-imm", isla::OpcodeSpec::symbolicField(AddSp, 21, 10),
       isla::Assumptions()});
  // A symbolic destination-register field forks through the whole
  // register-select chain — the many-path stress case where replay's
  // per-path re-execution of the shared decode prefix dominates.
  isla::Assumptions El1;
  El1.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  El1.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  El1.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  Studies.push_back(
      {"add-imm-symbolic-rd",
       isla::OpcodeSpec::symbolicField(arch::aarch64::enc::addImm(0, 0, 1),
                                       4, 0),
       El1});

  // Cache persistence is on by default: a scratch directory wiped up front
  // keeps the cold pass honestly cold while the warm pass round-trips
  // through the on-disk store (clearMemory() between the two, so the warm
  // read is a disk hit, not a map lookup).
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("islaris-bench-traces-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = CacheDir;
  cache::TraceCache Cache(Cfg);

  std::printf("=== Trace generation: replay vs snapshot, cold vs warm "
              "===\n\n");
  std::printf("%-22s | %5s %6s | %9s -> %9s stmts | %8s | %8s %8s %8s\n",
              "study", "paths", "events", "replay", "snapshot", "skipped",
              "rep s", "cold s", "warm s");

  std::vector<Measurement> Ms;
  bool Ok = true;
  for (const Study &S : Studies) {
    Measurement Mm;

    // Replay baseline.
    {
      smt::TermBuilder TBr;
      isla::Executor Er(M, TBr);
      isla::ExecOptions O;
      O.Engine = isla::ExecEngine::Replay;
      double T0 = now();
      isla::ExecResult R = Er.run(S.Op, S.Assume, O);
      Mm.ReplayWall = now() - T0;
      if (!R.Ok) {
        std::fprintf(stderr, "replay error (%s): %s\n", S.Name.c_str(),
                     R.Error.c_str());
        return 1;
      }
      Mm.ReplayStmts = R.Stats.StmtsExecuted;
      std::string ReplayText = R.Trace.toString();

      // Snapshot cold, through the persistent cache.
      smt::TermBuilder TBs;
      isla::Executor Es(M, TBs);
      isla::ExecOptions OS; // snapshot is the default engine
      cache::Fingerprint Key =
          cache::traceCacheKey("aarch64", M, S.Op, S.Assume, OS);
      T0 = now();
      isla::ExecResult RS = Es.run(S.Op, S.Assume, OS);
      Mm.ColdWall = now() - T0;
      if (!RS.Ok) {
        std::fprintf(stderr, "snapshot error (%s): %s\n", S.Name.c_str(),
                     RS.Error.c_str());
        return 1;
      }
      Cache.insert(Key, cache::TraceCache::encode(RS));
      Mm.Paths = RS.Stats.Paths;
      Mm.Events = RS.Stats.Events;
      Mm.SnapStmts = RS.Stats.StmtsExecuted;
      Mm.SnapSkipped = RS.Stats.StmtsSkippedBySnapshot;
      Mm.HelperMemoHits = RS.Stats.HelperMemoHits;
      Mm.Identical = RS.Trace.toString() == ReplayText &&
                     RS.Stats.Paths == R.Stats.Paths &&
                     RS.Stats.Events == R.Stats.Events;

      // Warm: a disk read through a cold in-memory map.
      Cache.clearMemory();
      smt::TermBuilder TBw;
      isla::ExecResult RW;
      std::string Err;
      T0 = now();
      auto E = Cache.lookup(Key);
      Mm.WarmWall = now() - T0;
      Mm.WarmFromDisk =
          E && cache::TraceCache::decode(*E, TBw, RW, Err) &&
          RW.Trace.toString() == ReplayText;
    }

    Ok = Ok && Mm.Identical && Mm.WarmFromDisk;
    std::printf("%-22s | %5u %6u | %9llu -> %9llu stmts | %8llu | "
                "%8.4f %8.4f %8.4f\n",
                S.Name.c_str(), Mm.Paths, Mm.Events,
                (unsigned long long)Mm.ReplayStmts,
                (unsigned long long)Mm.SnapStmts,
                (unsigned long long)Mm.SnapSkipped, Mm.ReplayWall,
                Mm.ColdWall, Mm.WarmWall);
    Ms.push_back(Mm);
  }
  std::filesystem::remove_all(CacheDir, EC);

  //===------------------------------------------------------------------===//
  // Path merging: enumeration vs ite-joins on many independent branches.
  //===------------------------------------------------------------------===//

  std::printf("\n=== Path merging: snapshot enumeration vs merge engine "
              "===\n\n");
  std::printf("%-10s | %6s -> %5s paths | %9s -> %9s stmts | %7s | %6s | "
              "%8s %8s\n",
              "study", "enum", "merge", "enum", "merge", "merged", "ites",
              "enum s", "merge s");

  std::vector<MergeMeasurement> Mg;
  bool MergeOk = true;
  for (unsigned N : {8u, 10u, 12u}) {
    std::string Err;
    auto SynM = sail::parseModel(manyBranchModelSource(N), Err);
    if (!SynM) {
      std::fprintf(stderr, "model error (%u branches): %s\n", N, Err.c_str());
      return 1;
    }
    isla::OpcodeSpec Op = isla::OpcodeSpec::symbolicField(0, N - 1, 0);
    MergeMeasurement MM;
    MM.Branches = N;

    smt::TermBuilder TBs;
    isla::Executor Es(*SynM, TBs);
    isla::ExecOptions OS;
    OS.Engine = isla::ExecEngine::Snapshot;
    OS.MaxPaths = 4096; // 2^12 enumerated leaves at the deep end
    double T0 = now();
    isla::ExecResult RS = Es.run(Op, isla::Assumptions(), OS);
    MM.SnapWall = now() - T0;
    smt::TermBuilder TBm;
    isla::Executor Em(*SynM, TBm);
    isla::ExecOptions OM = OS;
    OM.Engine = isla::ExecEngine::Merge;
    T0 = now();
    isla::ExecResult RM = Em.run(Op, isla::Assumptions(), OM);
    MM.MergeWall = now() - T0;
    if (!RS.Ok || !RM.Ok) {
      std::fprintf(stderr, "merge study error (%u branches): %s%s\n", N,
                   RS.Error.c_str(), RM.Error.c_str());
      return 1;
    }
    MM.SnapPaths = RS.Stats.Paths;
    MM.MergePaths = RM.Stats.Paths;
    MM.SnapStmts = RS.Stats.StmtsExecuted;
    MM.MergeStmts = RM.Stats.StmtsExecuted;
    MM.PathsMerged = RM.Stats.PathsMerged;
    MM.MergeFallbacks = RM.Stats.MergeFallbacks;
    MM.IteTerms = RM.Stats.IteTermsIntroduced;
    std::printf("%2u-branch  | %6u -> %5u paths | %9llu -> %9llu stmts | "
                "%7u | %6llu | %8.4f %8.4f\n",
                N, MM.SnapPaths, MM.MergePaths,
                (unsigned long long)MM.SnapStmts,
                (unsigned long long)MM.MergeStmts, MM.PathsMerged,
                (unsigned long long)MM.IteTerms, MM.SnapWall, MM.MergeWall);
    MergeOk = MergeOk && MM.SnapPaths == (1u << N) && MM.MergePaths == 1 &&
              MM.PathsMerged == N && MM.MergeStmts < MM.SnapStmts;
    Mg.push_back(MM);
  }

  // The separation must be SUPER-linear: the statement ratio grows with
  // the branch count (enumeration pays O(2^N), merging O(N)).
  bool SuperLinear = true;
  for (size_t I = 1; I < Mg.size(); ++I) {
    double Prev = double(Mg[I - 1].SnapStmts) / double(Mg[I - 1].MergeStmts);
    double Cur = double(Mg[I].SnapStmts) / double(Mg[I].MergeStmts);
    SuperLinear = SuperLinear && Cur > Prev;
  }
  SuperLinear = SuperLinear && !Mg.empty() &&
                Mg.front().SnapStmts >= 8 * Mg.front().MergeStmts;

  // Semantic equivalence of a merged trace, checked the §5 way: the
  // unconstrained-flags beq merges its two arms into ite values, and every
  // linear path of that merged trace must replay against the concrete
  // reference interpreter.
  bool MergeValidated = false;
  {
    smt::TermBuilder TBv;
    isla::Executor Ev(M, TBv);
    isla::ExecOptions OM;
    OM.Engine = isla::ExecEngine::Merge;
    uint32_t BeqU = 0x54000000u | (0x7fff0u << 5);
    isla::ExecResult RM =
        Ev.run(isla::OpcodeSpec::concrete(BeqU), isla::Assumptions(), OM);
    if (RM.Ok && RM.Stats.PathsMerged >= 1) {
      validation::ValidationResult VR = validation::validateInstruction(
          M, TBv, BeqU, isla::Assumptions(), RM.Trace, "_PC",
          /*RandomTrials=*/4, BeqU);
      MergeValidated = VR.Ok && VR.PathsCovered == VR.Paths;
      if (!VR.Ok)
        std::fprintf(stderr, "merged-trace validation: %s\n",
                     VR.Error.c_str());
    }
  }

  // At least one multi-path study must show the snapshot engine executing
  // at most half the statements replay does (the headline saving).
  bool Halved = false;
  for (const Measurement &Mm : Ms)
    Halved = Halved ||
             (Mm.Paths > 1 && Mm.SnapStmts * 2 <= Mm.ReplayStmts);
  std::printf("\n  replay and snapshot traces byte-identical ........ %s\n",
              Ok ? "yes" : "NO");
  std::printf("  >=2x statement reduction on a multi-path study ... %s\n",
              Halved ? "yes" : "NO");
  std::printf("  merge collapses every study to one path .......... %s\n",
              MergeOk ? "yes" : "NO");
  std::printf("  merge saving grows super-linearly with branches .. %s\n",
              SuperLinear ? "yes" : "NO");
  std::printf("  merged beq trace validates against concrete ...... %s\n",
              MergeValidated ? "yes" : "NO");

  // Machine-readable summary for downstream tooling.
  FILE *J = std::fopen("BENCH_trace_gen.json", "w");
  if (J) {
    std::fprintf(J, "{\n  \"bench\": \"trace_gen\",\n");
    std::fprintf(J, "  \"engines\": [\"replay\", \"snapshot\"],\n");
    std::fprintf(J, "  \"studies\": [\n");
    for (size_t I = 0; I < Ms.size(); ++I) {
      const Measurement &Mm = Ms[I];
      std::fprintf(
          J,
          "    {\"name\": \"%s\", \"paths\": %u, \"events\": %u,\n"
          "     \"replay\": {\"stmts_executed\": %llu, \"wall_s\": %.6f},\n"
          "     \"snapshot_cold\": {\"stmts_executed\": %llu, "
          "\"stmts_skipped\": %llu, \"helper_memo_hits\": %u, "
          "\"wall_s\": %.6f},\n"
          "     \"warm\": {\"source\": \"disk\", \"hit\": %s, "
          "\"wall_s\": %.6f},\n"
          "     \"stmts_reduction\": %.3f, \"identical\": %s}%s\n",
          Studies[I].Name.c_str(), Mm.Paths, Mm.Events,
          (unsigned long long)Mm.ReplayStmts, Mm.ReplayWall,
          (unsigned long long)Mm.SnapStmts,
          (unsigned long long)Mm.SnapSkipped, Mm.HelperMemoHits,
          Mm.ColdWall, Mm.WarmFromDisk ? "true" : "false", Mm.WarmWall,
          Mm.SnapStmts ? double(Mm.ReplayStmts) / double(Mm.SnapStmts) : 0.0,
          Mm.Identical ? "true" : "false",
          I + 1 < Ms.size() ? "," : "");
    }
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"merge_studies\": [\n");
    for (size_t I = 0; I < Mg.size(); ++I) {
      const MergeMeasurement &MM = Mg[I];
      std::fprintf(
          J,
          "    {\"branches\": %u,\n"
          "     \"enumerated\": {\"paths\": %u, \"stmts_executed\": %llu, "
          "\"wall_s\": %.6f},\n"
          "     \"merged\": {\"paths\": %u, \"stmts_executed\": %llu, "
          "\"paths_merged\": %u, \"merge_fallbacks\": %u, "
          "\"ite_terms\": %llu, \"wall_s\": %.6f},\n"
          "     \"stmts_reduction\": %.3f}%s\n",
          MM.Branches, MM.SnapPaths, (unsigned long long)MM.SnapStmts,
          MM.SnapWall, MM.MergePaths, (unsigned long long)MM.MergeStmts,
          MM.PathsMerged, MM.MergeFallbacks, (unsigned long long)MM.IteTerms,
          MM.MergeWall,
          MM.MergeStmts ? double(MM.SnapStmts) / double(MM.MergeStmts) : 0.0,
          I + 1 < Mg.size() ? "," : "");
    }
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"merge_single_path\": %s,\n",
                 MergeOk ? "true" : "false");
    std::fprintf(J, "  \"merge_superlinear\": %s,\n",
                 SuperLinear ? "true" : "false");
    std::fprintf(J, "  \"merge_validated\": %s,\n",
                 MergeValidated ? "true" : "false");
    std::fprintf(J, "  \"multi_path_halved\": %s,\n",
                 Halved ? "true" : "false");
    std::fprintf(J, "  \"all_identical\": %s\n", Ok ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
    std::printf("  wrote BENCH_trace_gen.json\n");
  }

  return Ok && Halved && MergeOk && SuperLinear && MergeValidated ? 0 : 1;
}
