//===- bench/bench_traces.cpp - Regenerate Figs. 3 and 6 (E2, E3) -----------------===//
//
// Prints the Isla traces the paper shows as figures:
//   Fig. 3 — add sp, sp, #0x40 (opcode 0x910103ff) under EL=2, SP=1;
//   Fig. 6 — beq -16 under the default flag-register assumptions, showing
//            the cases/assert branching structure.
//
// Then measures trace generation per study across the two path-exploration
// engines (replay re-executes the shared prefix of every path; the
// snapshot engine checkpoints and restores it) and across cache
// temperature (cold execution vs. a warm read from the persistent trace
// cache, which is on by default here), and emits the results as
// machine-readable JSON into BENCH_trace_gen.json.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "cache/TraceCache.h"
#include "isla/Executor.h"
#include "models/Models.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace islaris;
using islaris::itl::Reg;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

isla::Assumptions el2Assumptions() {
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  return A;
}

struct Study {
  std::string Name;
  isla::OpcodeSpec Op;
  isla::Assumptions Assume;
};

struct Measurement {
  unsigned Paths = 0, Events = 0;
  uint64_t ReplayStmts = 0, SnapStmts = 0, SnapSkipped = 0;
  unsigned HelperMemoHits = 0;
  double ReplayWall = 0, ColdWall = 0, WarmWall = 0;
  bool Identical = false; ///< Replay and snapshot traces byte-identical.
  bool WarmFromDisk = false;
};

} // namespace

int main() {
  const sail::Model &M = models::aarch64Model();

  std::printf("=== Fig. 3: add sp, sp, #0x40 (opcode 0x910103ff), "
              "EL=2 SP=1 ===\n\n");
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  isla::ExecResult R1 =
      Ex.run(isla::OpcodeSpec::concrete(0x910103ffu), el2Assumptions());
  if (!R1.Ok) {
    std::fprintf(stderr, "error: %s\n", R1.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R1.Trace.toString().c_str());
  std::printf("events: %u  paths: %u (linear, as in the figure)\n\n",
              R1.Stats.Events, R1.Stats.Paths);

  std::printf("=== Fig. 6: beq -16 (condition-flag branching) ===\n\n");
  uint32_t Beq = arch::aarch64::enc::bcond(arch::aarch64::Cond::EQ, -16);
  isla::ExecResult R2 =
      Ex.run(isla::OpcodeSpec::concrete(Beq), isla::Assumptions());
  if (!R2.Ok) {
    std::fprintf(stderr, "error: %s\n", R2.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R2.Trace.toString().c_str());
  std::printf("events: %u  paths: %u  (two cases guarded by asserts on "
              "the branch condition, as in the figure)\n\n",
              R2.Stats.Events, R2.Stats.Paths);

  //===------------------------------------------------------------------===//
  // Engine and cache-temperature measurement, emitted as JSON.
  //===------------------------------------------------------------------===//

  constexpr uint32_t AddSp = 0x91000000u | (0x40u << 10);
  std::vector<Study> Studies;
  Studies.push_back(
      {"add-sp-imm (EL2)", isla::OpcodeSpec::concrete(0x910103ffu),
       el2Assumptions()});
  Studies.push_back(
      {"beq-minus-16", isla::OpcodeSpec::concrete(Beq),
       isla::Assumptions()});
  Studies.push_back(
      {"add-sp-symbolic-imm", isla::OpcodeSpec::symbolicField(AddSp, 21, 10),
       isla::Assumptions()});
  // A symbolic destination-register field forks through the whole
  // register-select chain — the many-path stress case where replay's
  // per-path re-execution of the shared decode prefix dominates.
  isla::Assumptions El1;
  El1.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  El1.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  El1.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  Studies.push_back(
      {"add-imm-symbolic-rd",
       isla::OpcodeSpec::symbolicField(arch::aarch64::enc::addImm(0, 0, 1),
                                       4, 0),
       El1});

  // Cache persistence is on by default: a scratch directory wiped up front
  // keeps the cold pass honestly cold while the warm pass round-trips
  // through the on-disk store (clearMemory() between the two, so the warm
  // read is a disk hit, not a map lookup).
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("islaris-bench-traces-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = CacheDir;
  cache::TraceCache Cache(Cfg);

  std::printf("=== Trace generation: replay vs snapshot, cold vs warm "
              "===\n\n");
  std::printf("%-22s | %5s %6s | %9s -> %9s stmts | %8s | %8s %8s %8s\n",
              "study", "paths", "events", "replay", "snapshot", "skipped",
              "rep s", "cold s", "warm s");

  std::vector<Measurement> Ms;
  bool Ok = true;
  for (const Study &S : Studies) {
    Measurement Mm;

    // Replay baseline.
    {
      smt::TermBuilder TBr;
      isla::Executor Er(M, TBr);
      isla::ExecOptions O;
      O.Engine = isla::ExecEngine::Replay;
      double T0 = now();
      isla::ExecResult R = Er.run(S.Op, S.Assume, O);
      Mm.ReplayWall = now() - T0;
      if (!R.Ok) {
        std::fprintf(stderr, "replay error (%s): %s\n", S.Name.c_str(),
                     R.Error.c_str());
        return 1;
      }
      Mm.ReplayStmts = R.Stats.StmtsExecuted;
      std::string ReplayText = R.Trace.toString();

      // Snapshot cold, through the persistent cache.
      smt::TermBuilder TBs;
      isla::Executor Es(M, TBs);
      isla::ExecOptions OS; // snapshot is the default engine
      cache::Fingerprint Key =
          cache::traceCacheKey("aarch64", M, S.Op, S.Assume, OS);
      T0 = now();
      isla::ExecResult RS = Es.run(S.Op, S.Assume, OS);
      Mm.ColdWall = now() - T0;
      if (!RS.Ok) {
        std::fprintf(stderr, "snapshot error (%s): %s\n", S.Name.c_str(),
                     RS.Error.c_str());
        return 1;
      }
      Cache.insert(Key, cache::TraceCache::encode(RS));
      Mm.Paths = RS.Stats.Paths;
      Mm.Events = RS.Stats.Events;
      Mm.SnapStmts = RS.Stats.StmtsExecuted;
      Mm.SnapSkipped = RS.Stats.StmtsSkippedBySnapshot;
      Mm.HelperMemoHits = RS.Stats.HelperMemoHits;
      Mm.Identical = RS.Trace.toString() == ReplayText &&
                     RS.Stats.Paths == R.Stats.Paths &&
                     RS.Stats.Events == R.Stats.Events;

      // Warm: a disk read through a cold in-memory map.
      Cache.clearMemory();
      smt::TermBuilder TBw;
      isla::ExecResult RW;
      std::string Err;
      T0 = now();
      auto E = Cache.lookup(Key);
      Mm.WarmWall = now() - T0;
      Mm.WarmFromDisk =
          E && cache::TraceCache::decode(*E, TBw, RW, Err) &&
          RW.Trace.toString() == ReplayText;
    }

    Ok = Ok && Mm.Identical && Mm.WarmFromDisk;
    std::printf("%-22s | %5u %6u | %9llu -> %9llu stmts | %8llu | "
                "%8.4f %8.4f %8.4f\n",
                S.Name.c_str(), Mm.Paths, Mm.Events,
                (unsigned long long)Mm.ReplayStmts,
                (unsigned long long)Mm.SnapStmts,
                (unsigned long long)Mm.SnapSkipped, Mm.ReplayWall,
                Mm.ColdWall, Mm.WarmWall);
    Ms.push_back(Mm);
  }
  std::filesystem::remove_all(CacheDir, EC);

  // At least one multi-path study must show the snapshot engine executing
  // at most half the statements replay does (the headline saving).
  bool Halved = false;
  for (const Measurement &Mm : Ms)
    Halved = Halved ||
             (Mm.Paths > 1 && Mm.SnapStmts * 2 <= Mm.ReplayStmts);
  std::printf("\n  replay and snapshot traces byte-identical ........ %s\n",
              Ok ? "yes" : "NO");
  std::printf("  >=2x statement reduction on a multi-path study ... %s\n",
              Halved ? "yes" : "NO");

  // Machine-readable summary for downstream tooling.
  FILE *J = std::fopen("BENCH_trace_gen.json", "w");
  if (J) {
    std::fprintf(J, "{\n  \"bench\": \"trace_gen\",\n");
    std::fprintf(J, "  \"engines\": [\"replay\", \"snapshot\"],\n");
    std::fprintf(J, "  \"studies\": [\n");
    for (size_t I = 0; I < Ms.size(); ++I) {
      const Measurement &Mm = Ms[I];
      std::fprintf(
          J,
          "    {\"name\": \"%s\", \"paths\": %u, \"events\": %u,\n"
          "     \"replay\": {\"stmts_executed\": %llu, \"wall_s\": %.6f},\n"
          "     \"snapshot_cold\": {\"stmts_executed\": %llu, "
          "\"stmts_skipped\": %llu, \"helper_memo_hits\": %u, "
          "\"wall_s\": %.6f},\n"
          "     \"warm\": {\"source\": \"disk\", \"hit\": %s, "
          "\"wall_s\": %.6f},\n"
          "     \"stmts_reduction\": %.3f, \"identical\": %s}%s\n",
          Studies[I].Name.c_str(), Mm.Paths, Mm.Events,
          (unsigned long long)Mm.ReplayStmts, Mm.ReplayWall,
          (unsigned long long)Mm.SnapStmts,
          (unsigned long long)Mm.SnapSkipped, Mm.HelperMemoHits,
          Mm.ColdWall, Mm.WarmFromDisk ? "true" : "false", Mm.WarmWall,
          Mm.SnapStmts ? double(Mm.ReplayStmts) / double(Mm.SnapStmts) : 0.0,
          Mm.Identical ? "true" : "false",
          I + 1 < Ms.size() ? "," : "");
    }
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"multi_path_halved\": %s,\n",
                 Halved ? "true" : "false");
    std::fprintf(J, "  \"all_identical\": %s\n", Ok ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
    std::printf("  wrote BENCH_trace_gen.json\n");
  }

  return Ok && Halved ? 0 : 1;
}
