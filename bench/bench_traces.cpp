//===- bench/bench_traces.cpp - Regenerate Figs. 3 and 6 (E2, E3) -----------------===//
//
// Prints the Isla traces the paper shows as figures:
//   Fig. 3 — add sp, sp, #0x40 (opcode 0x910103ff) under EL=2, SP=1;
//   Fig. 6 — beq -16 under the default flag-register assumptions, showing
//            the cases/assert branching structure.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "isla/Executor.h"
#include "models/Models.h"

#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;

int main() {
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);

  std::printf("=== Fig. 3: add sp, sp, #0x40 (opcode 0x910103ff), "
              "EL=2 SP=1 ===\n\n");
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  isla::ExecResult R1 =
      Ex.run(isla::OpcodeSpec::concrete(0x910103ffu), A);
  if (!R1.Ok) {
    std::fprintf(stderr, "error: %s\n", R1.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R1.Trace.toString().c_str());
  std::printf("events: %u  paths: %u (linear, as in the figure)\n\n",
              R1.Stats.Events, R1.Stats.Paths);

  std::printf("=== Fig. 6: beq -16 (condition-flag branching) ===\n\n");
  uint32_t Beq = arch::aarch64::enc::bcond(arch::aarch64::Cond::EQ, -16);
  isla::ExecResult R2 =
      Ex.run(isla::OpcodeSpec::concrete(Beq), isla::Assumptions());
  if (!R2.Ok) {
    std::fprintf(stderr, "error: %s\n", R2.Error.c_str());
    return 1;
  }
  std::printf("%s\n\n", R2.Trace.toString().c_str());
  std::printf("events: %u  paths: %u  (two cases guarded by asserts on "
              "the branch condition, as in the figure)\n",
              R2.Stats.Events, R2.Stats.Paths);
  return 0;
}
