//===- bench/bench_server.cpp - islarisd load generator (E8) -------------------===//
//
// Measures the resident server the way a client fleet sees it: an
// in-process islarisd on a Unix socket, driven by N concurrent clients
// replaying thousands of mixed requests.
//
//   cold phase  — every distinct key requested once (fresh executions,
//                 serial: unloaded latency);
//   warm phase  — the same keys re-requested serially (cache hits + wire
//                 round-trip: unloaded warm latency, the apples-to-apples
//                 comparison against cold);
//   fleet phase — thousands of requests over the same keys from 8
//                 concurrent client connections (loaded throughput);
//   lossy phase — the warm keys again, but over TCP through a fixed-seed
//                 chaos proxy (splits, delays, corruption, resets): what
//                 the retry/backoff client costs on a hostile network.
//   failover    — the warm keys from 8 clients spread across a 3-daemon
//                 fleet sharing the store; one daemon is drained and a
//                 second hot-reloads its models mid-run: what losing a
//                 daemon costs the fleet's latency tail.
//   degraded    — fresh keys against a daemon whose store publishes fail
//                 (injected disk-full): the throughput of cache-off
//                 degraded mode, which must be a slowdown, not an outage.
//
// Emits BENCH_server.json with throughput and p50/p95/p99 latency per
// phase (plus the lossy phase's retry/shed/deadline counters), and
// self-checks the headline claims: warm p50 latency at least 10x below
// cold p50 (the resident state is what a short-lived batch process cannot
// keep), and zero failed requests even on the lossy wire, across the
// daemon kill, and in degraded mode (faults end as retries or slower
// service, never wrong results).
//
//===----------------------------------------------------------------------===//

#include "server/ChaosProxy.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace islaris;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T).count();
}

double pct(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = size_t(P * double(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// add x<rd>, x<rn>, #imm with a *symbolic* destination register and one
/// symbolic source-index bit (64 merged paths, as in the paper's
/// symbolic-operand executions) and a distinct immediate per key index:
/// one key = one distinct, genuinely expensive symbolic execution.
server::TraceRequest requestFor(unsigned Key) {
  server::TraceRequest T;
  T.Arch = "aarch64";
  T.Opcode = 0x910003e0u | ((Key & 0xfffu) << 10);
  T.SymMask = 0x3fu; // rd + low rn bit symbolic
  T.Assumes.push_back({"PSTATE", "EL", 2, 2});
  T.Assumes.push_back({"PSTATE", "SP", 1, 1});
  return T;
}

struct Phase {
  std::vector<double> LatMs;
  double WallSeconds = 0;
  unsigned Failures = 0;
};

} // namespace

int main() {
  // Throwaway store, no durability syncs: this benchmark measures the
  // server, not the disk.
  ::setenv("ISLARIS_NO_FSYNC", "1", 1);
  char DirTmpl[] = "/tmp/islaris-bench-XXXXXX";
  std::string Root = ::mkdtemp(DirTmpl);
  std::string Sock = Root + "/d.sock";

  server::ServerConfig Cfg;
  Cfg.SocketPath = Sock;
  Cfg.Workers = 4;
  Cfg.MaxQueueDepth = 1u << 14;
  Cfg.CacheDir = Root + "/cache";
  server::Server S(Cfg);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
    return 2;
  }

  constexpr unsigned Keys = 48;
  constexpr unsigned WarmRequests = 480;
  constexpr unsigned FleetRequests = 2000;
  constexpr unsigned ClientThreads = 8;

  std::printf("=== islarisd load generation ===\n\n");

  // The first request pays the one-time model parse; keep that out of the
  // cold latency distribution (it is the daemon's startup cost, not a
  // per-request one).
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    server::TraceRequest W = requestFor(0);
    W.Opcode |= 0xfffu << 10; // an immediate outside the key range
    server::Client::TraceResult R;
    if (!C.runTrace(W, R, Err) || !R.Ok) {
      std::fprintf(stderr, "bench_server: warmup failed: %s\n", Err.c_str());
      return 2;
    }
  }

  // --- Cold phase: each distinct key once, serially (fresh executions).
  Phase Cold;
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    Clock::time_point T0 = Clock::now();
    for (unsigned K = 0; K < Keys; ++K) {
      Clock::time_point R0 = Clock::now();
      server::Client::TraceResult R;
      if (!C.runTrace(requestFor(K), R, Err) || !R.Ok)
        ++Cold.Failures;
      Cold.LatMs.push_back(msSince(R0));
    }
    Cold.WallSeconds = msSince(T0) / 1e3;
  }

  // --- Warm phase: the same keys again, serially, from a fresh client —
  // the unloaded warm latency a single caller observes.
  Phase Warm;
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    Clock::time_point T0 = Clock::now();
    for (unsigned I = 0; I < WarmRequests; ++I) {
      Clock::time_point R0 = Clock::now();
      server::Client::TraceResult R;
      if (!C.runTrace(requestFor(I % Keys), R, Err) || !R.Ok)
        ++Warm.Failures;
      Warm.LatMs.push_back(msSince(R0));
    }
    Warm.WallSeconds = msSince(T0) / 1e3;
  }

  // --- Fleet phase: the same keys, thousands of times, from concurrent
  // clients (one connection per thread, as real clients would).
  Phase Fleet;
  {
    std::vector<std::vector<double>> PerThread(ClientThreads);
    std::vector<unsigned> Fail(ClientThreads, 0);
    std::atomic<unsigned> Next{0};
    Clock::time_point T0 = Clock::now();
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < ClientThreads; ++W)
      Ts.emplace_back([&, W] {
        server::Client C;
        std::string E;
        if (!C.connect(Sock, E)) {
          ++Fail[W];
          return;
        }
        while (true) {
          unsigned I = Next.fetch_add(1, std::memory_order_relaxed);
          if (I >= FleetRequests)
            return;
          Clock::time_point R0 = Clock::now();
          server::Client::TraceResult R;
          if (!C.runTrace(requestFor(I % Keys), R, E) || !R.Ok)
            ++Fail[W];
          PerThread[W].push_back(msSince(R0));
        }
      });
    for (std::thread &T : Ts)
      T.join();
    Fleet.WallSeconds = msSince(T0) / 1e3;
    for (unsigned W = 0; W < ClientThreads; ++W) {
      Fleet.LatMs.insert(Fleet.LatMs.end(), PerThread[W].begin(),
                         PerThread[W].end());
      Fleet.Failures += Fail[W];
    }
  }

  // --- Lossy phase: the warm keys once more, but across TCP through a
  // fixed-seed chaos proxy injecting the hostile-network fault mix.  The
  // retrying client must absorb every fault; what we measure is what that
  // absorption costs in tail latency.
  constexpr unsigned LossyRequests = 120;
  constexpr unsigned LossyThreads = 2;
  Phase Lossy;
  server::ClientNetStats LossyNet;
  server::ChaosStats LossyChaos;
  {
    server::ChaosConfig CC;
    CC.Seed = 42; // fixed: the fault schedule is part of the benchmark
    CC.SplitProb = 0.25;
    CC.DelayProb = 0.15;
    CC.DelayMaxMs = 2;
    CC.CorruptProb = 0.02;
    CC.ResetProb = 0.01;
    server::ChaosProxy P(CC);
    if (!P.start("127.0.0.1:0", Sock, Err)) {
      std::fprintf(stderr, "bench_server: chaos proxy: %s\n", Err.c_str());
      return 2;
    }
    std::string Via = P.boundEndpoint().str();

    std::vector<std::vector<double>> PerThread(LossyThreads);
    std::vector<unsigned> Fail(LossyThreads, 0);
    std::vector<server::ClientNetStats> NetPer(LossyThreads);
    std::atomic<unsigned> Next{0};
    Clock::time_point T0 = Clock::now();
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < LossyThreads; ++W)
      Ts.emplace_back([&, W] {
        server::ClientOptions CO;
        CO.Name = "bench-lossy";
        CO.MaxAttempts = 12;
        CO.BackoffBaseSeconds = 0.01;
        CO.BackoffCapSeconds = 0.25;
        // A corrupted client->server frame kills the connection on the
        // server side; the client's only detector is silence.  Keep it
        // tight so the lossy phase measures retry cost, not patience.
        CO.SilenceTimeoutSeconds = 2;
        CO.HeartbeatSeconds = 0.5;
        CO.Seed = 42 + W;
        server::Client C(CO);
        std::string E;
        if (!C.connect(Via, E)) {
          ++Fail[W];
          return;
        }
        while (true) {
          unsigned I = Next.fetch_add(1, std::memory_order_relaxed);
          if (I >= LossyRequests)
            break;
          Clock::time_point R0 = Clock::now();
          server::Client::TraceResult R;
          if (!C.runTrace(requestFor(I % Keys), R, E) || !R.Ok)
            ++Fail[W];
          PerThread[W].push_back(msSince(R0));
        }
        NetPer[W] = C.netStats();
      });
    for (std::thread &T : Ts)
      T.join();
    Lossy.WallSeconds = msSince(T0) / 1e3;
    for (unsigned W = 0; W < LossyThreads; ++W) {
      Lossy.LatMs.insert(Lossy.LatMs.end(), PerThread[W].begin(),
                         PerThread[W].end());
      Lossy.Failures += Fail[W];
      LossyNet.Retries += NetPer[W].Retries;
      LossyNet.Sheds += NetPer[W].Sheds;
      LossyNet.Reconnects += NetPer[W].Reconnects;
      LossyNet.HeartbeatsSent += NetPer[W].HeartbeatsSent;
      LossyNet.HeartbeatsSeen += NetPer[W].HeartbeatsSeen;
      LossyNet.DeadlineExpired += NetPer[W].DeadlineExpired;
    }
    P.stop();
    LossyChaos = P.stats();
  }

  // The single daemon's work is done; the remaining phases run against a
  // fleet of their own.  (Collect its counters before the drain.)
  server::ServerStats St = S.stats();
  S.requestShutdown();
  S.wait();

  // --- Failover phase: the warm keys again from 8 clients, but spread
  // over a 3-daemon fleet sharing the store, each client carrying the
  // full endpoint list.  A third of the way in, one daemon is drained
  // out from under its clients; two thirds in, a second daemon
  // hot-reloads its models.  Both events must cost latency, not
  // requests.  (Trace requests only: in-process servers share ambient
  // per-process state that separate daemon processes would not.)
  constexpr unsigned FailoverRequests = 600;
  constexpr unsigned FailoverThreads = 8;
  constexpr unsigned FleetSize = 3;
  constexpr unsigned DegradedRequests = 24;
  constexpr unsigned DegradedThreads = 4;
  Phase Failover;
  std::vector<double> PostKillLat;
  server::ClientNetStats FailNet;
  uint64_t ReloadGeneration = 0;
  uint64_t FleetExecuted = 0, FleetWarmHits = 0;
  Phase Degraded;
  uint64_t DegradedEntered = 0, DegradedHealed = 0, DegradedPublishFails = 0;
  {
    std::vector<std::string> FSock;
    std::vector<std::unique_ptr<server::Server>> FleetD;
    for (unsigned D = 0; D < FleetSize; ++D) {
      server::ServerConfig FC;
      FC.SocketPath = Root + "/f" + std::to_string(D) + ".sock";
      FC.Workers = 2;
      FC.MaxQueueDepth = 1u << 14;
      FC.CacheDir = Root + "/cache"; // shared: the fleet serves one store
      FC.DegradedProbeSeconds = 0.2; // so the degraded phase can self-heal
      FSock.push_back(FC.SocketPath);
      FleetD.emplace_back(new server::Server(FC));
      if (!FleetD.back()->start(Err)) {
        std::fprintf(stderr, "bench_server: fleet daemon %u: %s\n", D,
                     Err.c_str());
        return 2;
      }
    }

    std::vector<std::vector<double>> PreLat(FailoverThreads);
    std::vector<std::vector<double>> PostLat(FailoverThreads);
    std::vector<unsigned> Fail(FailoverThreads, 0);
    std::vector<server::ClientNetStats> NetPer(FailoverThreads);
    std::atomic<unsigned> Next{0};
    std::atomic<bool> Killed{false};
    Clock::time_point T0 = Clock::now();
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < FailoverThreads; ++W)
      Ts.emplace_back([&, W] {
        server::ClientOptions CO;
        CO.Name = "bench-failover";
        CO.MaxAttempts = 25;
        CO.BackoffBaseSeconds = 0.01;
        CO.BackoffCapSeconds = 0.2;
        CO.ConnectTimeoutSeconds = 2;
        CO.SilenceTimeoutSeconds = 5;
        CO.HeartbeatSeconds = 0.5;
        CO.Seed = 7 + W;
        server::Client C(CO);
        // Rotate each thread's starting daemon so the load (and the kill)
        // spreads across the ring.
        std::string Eps = FSock[W % FleetSize] + "," +
                          FSock[(W + 1) % FleetSize] + "," +
                          FSock[(W + 2) % FleetSize];
        std::string E;
        if (!C.connect(Eps, E)) {
          ++Fail[W];
          return;
        }
        while (true) {
          unsigned I = Next.fetch_add(1, std::memory_order_relaxed);
          if (I >= FailoverRequests)
            break;
          bool Post = Killed.load(std::memory_order_relaxed);
          Clock::time_point R0 = Clock::now();
          server::Client::TraceResult R;
          if (!C.runTrace(requestFor(I % Keys), R, E) || !R.Ok)
            ++Fail[W];
          (Post ? PostLat : PreLat)[W].push_back(msSince(R0));
        }
        NetPer[W] = C.netStats();
      });

    // Controller: drain daemon 0 a third of the way in, hot-reload
    // daemon 1 two thirds in.
    while (Next.load(std::memory_order_relaxed) < FailoverRequests / 3)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    FleetD[0]->requestShutdown();
    Killed.store(true, std::memory_order_relaxed);
    FleetD[0]->wait();
    while (Next.load(std::memory_order_relaxed) < 2 * FailoverRequests / 3)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::string RErr;
    if (!FleetD[1]->reloadModels(RErr))
      std::fprintf(stderr, "bench_server: mid-run reload: %s\n",
                   RErr.c_str());

    for (std::thread &T : Ts)
      T.join();
    Failover.WallSeconds = msSince(T0) / 1e3;
    for (unsigned W = 0; W < FailoverThreads; ++W) {
      Failover.LatMs.insert(Failover.LatMs.end(), PreLat[W].begin(),
                            PreLat[W].end());
      Failover.LatMs.insert(Failover.LatMs.end(), PostLat[W].begin(),
                            PostLat[W].end());
      PostKillLat.insert(PostKillLat.end(), PostLat[W].begin(),
                         PostLat[W].end());
      Failover.Failures += Fail[W];
      FailNet.Retries += NetPer[W].Retries;
      FailNet.Sheds += NetPer[W].Sheds;
      FailNet.Reconnects += NetPer[W].Reconnects;
      FailNet.DialsRefused += NetPer[W].DialsRefused;
      FailNet.DialsTimedOut += NetPer[W].DialsTimedOut;
      FailNet.EndpointRotations += NetPer[W].EndpointRotations;
    }
    ReloadGeneration = FleetD[1]->healthSnapshot().Generation;

    // --- Degraded phase: fresh keys (never-seen immediates, so every
    // request is a real execution that wants to publish) against the
    // surviving daemon 2 while every store write fails with an injected
    // disk-full.  The first failed publish flips it into cache-off
    // degraded mode; throughput from there is what a daemon on a full
    // disk still delivers.  Disarming the injector lets the self-heal
    // probe bring the store back.
    {
      support::FaultInjector FI(7);
      FI.setRate(support::FaultSite::DiskFull, 1.0);
      support::FaultInjector::setActive(&FI);

      std::vector<std::vector<double>> PerThread(DegradedThreads);
      std::vector<unsigned> DFail(DegradedThreads, 0);
      std::atomic<unsigned> DNext{0};
      Clock::time_point T1 = Clock::now();
      std::vector<std::thread> DTs;
      for (unsigned W = 0; W < DegradedThreads; ++W)
        DTs.emplace_back([&, W] {
          server::Client C;
          std::string E;
          if (!C.connect(FSock[2], E)) {
            ++DFail[W];
            return;
          }
          while (true) {
            unsigned I = DNext.fetch_add(1, std::memory_order_relaxed);
            if (I >= DegradedRequests)
              break;
            Clock::time_point R0 = Clock::now();
            server::Client::TraceResult R;
            // 0x400+: outside both the key range and the warmup immediate.
            if (!C.runTrace(requestFor(0x400u + I), R, E) || !R.Ok)
              ++DFail[W];
            PerThread[W].push_back(msSince(R0));
          }
        });
      for (std::thread &T : DTs)
        T.join();
      Degraded.WallSeconds = msSince(T1) / 1e3;
      for (unsigned W = 0; W < DegradedThreads; ++W) {
        Degraded.LatMs.insert(Degraded.LatMs.end(), PerThread[W].begin(),
                              PerThread[W].end());
        Degraded.Failures += DFail[W];
      }

      // Disarm and give the self-heal probe a moment to notice.
      FI.setRate(support::FaultSite::DiskFull, 0.0);
      Clock::time_point H0 = Clock::now();
      while (FleetD[2]->healthSnapshot().DegradedFlags != 0 &&
             msSince(H0) < 5000)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      support::FaultInjector::setActive(nullptr);
    }

    for (unsigned D = 1; D < FleetSize; ++D) {
      server::ServerStats FS = FleetD[D]->stats();
      FleetExecuted += FS.Executed;
      FleetWarmHits += FS.WarmHits;
      DegradedEntered += FS.DegradedEntered;
      DegradedHealed += FS.DegradedHealed;
      DegradedPublishFails += FS.PublishFailures;
      FleetD[D]->requestShutdown();
      FleetD[D]->wait();
    }
    server::ServerStats F0 = FleetD[0]->stats();
    FleetExecuted += F0.Executed;
    FleetWarmHits += F0.WarmHits;
  }

  double ColdP50 = pct(Cold.LatMs, 0.50), ColdP95 = pct(Cold.LatMs, 0.95),
         ColdP99 = pct(Cold.LatMs, 0.99);
  double WarmP50 = pct(Warm.LatMs, 0.50), WarmP95 = pct(Warm.LatMs, 0.95),
         WarmP99 = pct(Warm.LatMs, 0.99);
  double FleetP50 = pct(Fleet.LatMs, 0.50), FleetP95 = pct(Fleet.LatMs, 0.95),
         FleetP99 = pct(Fleet.LatMs, 0.99);
  double FleetRps = double(Fleet.LatMs.size()) / Fleet.WallSeconds;
  double LossyP50 = pct(Lossy.LatMs, 0.50), LossyP95 = pct(Lossy.LatMs, 0.95),
         LossyP99 = pct(Lossy.LatMs, 0.99);
  double FailP50 = pct(Failover.LatMs, 0.50),
         FailP95 = pct(Failover.LatMs, 0.95),
         FailP99 = pct(Failover.LatMs, 0.99);
  double PostKillP50 = pct(PostKillLat, 0.50),
         PostKillP95 = pct(PostKillLat, 0.95);
  double DegrP50 = pct(Degraded.LatMs, 0.50),
         DegrP95 = pct(Degraded.LatMs, 0.95),
         DegrP99 = pct(Degraded.LatMs, 0.99);
  double DegrRps = double(Degraded.LatMs.size()) / Degraded.WallSeconds;

  std::printf("phase |     n | threads |   p50 ms |   p95 ms |   p99 ms |  req/s\n");
  std::printf("--------------------------------------------------------------------\n");
  std::printf("cold  | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Cold.LatMs.size(), 1u, ColdP50, ColdP95, ColdP99,
              double(Cold.LatMs.size()) / Cold.WallSeconds);
  std::printf("warm  | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Warm.LatMs.size(), 1u, WarmP50, WarmP95, WarmP99,
              double(Warm.LatMs.size()) / Warm.WallSeconds);
  std::printf("fleet | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Fleet.LatMs.size(), ClientThreads, FleetP50, FleetP95, FleetP99,
              FleetRps);
  std::printf("lossy | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Lossy.LatMs.size(), LossyThreads, LossyP50, LossyP95, LossyP99,
              double(Lossy.LatMs.size()) / Lossy.WallSeconds);
  std::printf("failov| %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Failover.LatMs.size(), FailoverThreads, FailP50, FailP95,
              FailP99, double(Failover.LatMs.size()) / Failover.WallSeconds);
  std::printf("degrad| %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n\n",
              Degraded.LatMs.size(), DegradedThreads, DegrP50, DegrP95,
              DegrP99, DegrRps);
  std::printf("server: executed=%llu warm_hits=%llu dedup_fanout=%llu "
              "rejected=%llu shed=%llu deadline_expired=%llu\n",
              (unsigned long long)St.Executed,
              (unsigned long long)St.WarmHits,
              (unsigned long long)St.DedupFanout,
              (unsigned long long)St.Rejected, (unsigned long long)St.Shed,
              (unsigned long long)St.DeadlineExpired);
  std::printf("lossy : retries=%llu sheds=%llu reconnects=%llu | proxy "
              "splits=%llu delays=%llu corruptions=%llu resets=%llu\n\n",
              (unsigned long long)LossyNet.Retries,
              (unsigned long long)LossyNet.Sheds,
              (unsigned long long)LossyNet.Reconnects,
              (unsigned long long)LossyChaos.Splits,
              (unsigned long long)LossyChaos.Delays,
              (unsigned long long)LossyChaos.Corruptions,
              (unsigned long long)LossyChaos.Resets);
  std::printf("failov: rotations=%llu dials_refused=%llu retries=%llu "
              "sheds=%llu post-kill p50=%.3f ms p95=%.3f ms "
              "reload_generation=%llu fleet_executed=%llu "
              "fleet_warm_hits=%llu\n",
              (unsigned long long)FailNet.EndpointRotations,
              (unsigned long long)FailNet.DialsRefused,
              (unsigned long long)FailNet.Retries,
              (unsigned long long)FailNet.Sheds, PostKillP50, PostKillP95,
              (unsigned long long)ReloadGeneration,
              (unsigned long long)FleetExecuted,
              (unsigned long long)FleetWarmHits);
  std::printf("degrad: entered=%llu healed=%llu publish_failures=%llu\n\n",
              (unsigned long long)DegradedEntered,
              (unsigned long long)DegradedHealed,
              (unsigned long long)DegradedPublishFails);

  bool NoFailures = Cold.Failures == 0 && Warm.Failures == 0 &&
                    Fleet.Failures == 0 && Lossy.Failures == 0 &&
                    Failover.Failures == 0 && Degraded.Failures == 0;
  // Dedup attach counts as warm service here: either way the request did
  // not pay for its own execution.  Everything after the cold phase (plus
  // the warmup request) should have been served from resident state.
  bool WarmServed =
      St.WarmHits + St.DedupFanout >= uint64_t(WarmRequests + FleetRequests);
  bool Speedup = WarmP50 * 10.0 <= ColdP50;
  // The lossy phase only proves something if the proxy actually mangled
  // the stream; a quiet proxy would pass vacuously.
  bool FaultsFired = LossyChaos.Splits + LossyChaos.Delays +
                         LossyChaos.Corruptions + LossyChaos.Resets >
                     0;
  // The kill only proves something if clients actually had to walk their
  // rings, and the mid-run reload must have landed (generation bumped).
  bool FailedOver = FailNet.EndpointRotations > 0 && ReloadGeneration >= 1;
  // Degraded mode must have been entered (publish failure observed) and
  // the self-heal probe must have brought the store back once disarmed.
  bool DegradedRan = DegradedEntered >= 1 && DegradedHealed >= 1;
  std::printf("  no failed requests (lossy wire included) .... %s\n",
              NoFailures ? "yes" : "NO");
  std::printf("  warm+fleet served without re-execution ...... %s\n",
              WarmServed ? "yes" : "NO");
  std::printf("  warm p50 at least 10x below cold p50 ........ %s "
              "(%.3f ms vs %.3f ms)\n",
              Speedup ? "yes" : "NO", WarmP50, ColdP50);
  std::printf("  chaos proxy injected faults ................. %s\n",
              FaultsFired ? "yes" : "NO");
  std::printf("  fleet failed over + reloaded mid-run ........ %s "
              "(%llu rotations, generation %llu)\n",
              FailedOver ? "yes" : "NO",
              (unsigned long long)FailNet.EndpointRotations,
              (unsigned long long)ReloadGeneration);
  std::printf("  degraded mode entered and self-healed ....... %s\n",
              DegradedRan ? "yes" : "NO");

  std::FILE *J = std::fopen("BENCH_server.json", "w");
  if (J) {
    std::fprintf(
        J,
        "{\"bench\":\"server\",\"keys\":%u,\"client_threads\":%u,"
        "\"cold\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f},"
        "\"warm\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f},"
        "\"fleet\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f,\"req_per_s\":%.1f},"
        "\"lossy\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f,\"retries\":%llu,\"sheds\":%llu,"
        "\"reconnects\":%llu,\"deadline_expired\":%llu,"
        "\"proxy_splits\":%llu,\"proxy_delays\":%llu,"
        "\"proxy_corruptions\":%llu,\"proxy_resets\":%llu},"
        "\"failover\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,"
        "\"p99_ms\":%.4f,\"post_kill_p50_ms\":%.4f,\"post_kill_p95_ms\":%.4f,"
        "\"wall_s\":%.4f,\"req_per_s\":%.1f,\"rotations\":%llu,"
        "\"dials_refused\":%llu,\"retries\":%llu,\"sheds\":%llu,"
        "\"reload_generation\":%llu},"
        "\"degraded\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,"
        "\"p99_ms\":%.4f,\"wall_s\":%.4f,\"req_per_s\":%.1f,"
        "\"publish_failures\":%llu,\"entered\":%llu,\"healed\":%llu},"
        "\"server\":{\"executed\":%llu,\"warm_hits\":%llu,"
        "\"dedup_fanout\":%llu,\"shed\":%llu,\"deadline_expired\":%llu,"
        "\"heartbeats_sent\":%llu,\"heartbeats_seen\":%llu},"
        "\"warm_p50_speedup\":%.1f}\n",
        Keys, ClientThreads, Cold.LatMs.size(), ColdP50, ColdP95, ColdP99,
        Cold.WallSeconds, Warm.LatMs.size(), WarmP50, WarmP95, WarmP99,
        Warm.WallSeconds, Fleet.LatMs.size(), FleetP50, FleetP95, FleetP99,
        Fleet.WallSeconds, FleetRps, Lossy.LatMs.size(), LossyP50, LossyP95,
        LossyP99, Lossy.WallSeconds, (unsigned long long)LossyNet.Retries,
        (unsigned long long)LossyNet.Sheds,
        (unsigned long long)LossyNet.Reconnects,
        (unsigned long long)LossyNet.DeadlineExpired,
        (unsigned long long)LossyChaos.Splits,
        (unsigned long long)LossyChaos.Delays,
        (unsigned long long)LossyChaos.Corruptions,
        (unsigned long long)LossyChaos.Resets, Failover.LatMs.size(), FailP50,
        FailP95, FailP99, PostKillP50, PostKillP95, Failover.WallSeconds,
        double(Failover.LatMs.size()) / Failover.WallSeconds,
        (unsigned long long)FailNet.EndpointRotations,
        (unsigned long long)FailNet.DialsRefused,
        (unsigned long long)FailNet.Retries,
        (unsigned long long)FailNet.Sheds,
        (unsigned long long)ReloadGeneration, Degraded.LatMs.size(), DegrP50,
        DegrP95, DegrP99, Degraded.WallSeconds, DegrRps,
        (unsigned long long)DegradedPublishFails,
        (unsigned long long)DegradedEntered,
        (unsigned long long)DegradedHealed,
        (unsigned long long)St.Executed, (unsigned long long)St.WarmHits,
        (unsigned long long)St.DedupFanout, (unsigned long long)St.Shed,
        (unsigned long long)St.DeadlineExpired,
        (unsigned long long)St.HeartbeatsSent,
        (unsigned long long)St.HeartbeatsSeen,
        WarmP50 > 0 ? ColdP50 / WarmP50 : 0.0);
    std::fclose(J);
    std::printf("\n  wrote BENCH_server.json\n");
  }

  std::error_code EC;
  fs::remove_all(Root, EC);
  return NoFailures && WarmServed && Speedup && FaultsFired && FailedOver &&
                 DegradedRan
             ? 0
             : 1;
}
