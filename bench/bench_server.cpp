//===- bench/bench_server.cpp - islarisd load generator (E8) -------------------===//
//
// Measures the resident server the way a client fleet sees it: an
// in-process islarisd on a Unix socket, driven by N concurrent clients
// replaying thousands of mixed requests.
//
//   cold phase  — every distinct key requested once (fresh executions,
//                 serial: unloaded latency);
//   warm phase  — the same keys re-requested serially (cache hits + wire
//                 round-trip: unloaded warm latency, the apples-to-apples
//                 comparison against cold);
//   fleet phase — thousands of requests over the same keys from 8
//                 concurrent client connections (loaded throughput).
//
// Emits BENCH_server.json with throughput and p50/p95/p99 latency per
// phase, and self-checks the headline claim of the server work: warm p50
// latency at least 10x below cold p50 (the resident state is what a
// short-lived batch process cannot keep).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace islaris;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T).count();
}

double pct(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = size_t(P * double(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// add x<rd>, x<rn>, #imm with a *symbolic* destination register and one
/// symbolic source-index bit (64 merged paths, as in the paper's
/// symbolic-operand executions) and a distinct immediate per key index:
/// one key = one distinct, genuinely expensive symbolic execution.
server::TraceRequest requestFor(unsigned Key) {
  server::TraceRequest T;
  T.Arch = "aarch64";
  T.Opcode = 0x910003e0u | ((Key & 0xfffu) << 10);
  T.SymMask = 0x3fu; // rd + low rn bit symbolic
  T.Assumes.push_back({"PSTATE", "EL", 2, 2});
  T.Assumes.push_back({"PSTATE", "SP", 1, 1});
  return T;
}

struct Phase {
  std::vector<double> LatMs;
  double WallSeconds = 0;
  unsigned Failures = 0;
};

} // namespace

int main() {
  // Throwaway store, no durability syncs: this benchmark measures the
  // server, not the disk.
  ::setenv("ISLARIS_NO_FSYNC", "1", 1);
  char DirTmpl[] = "/tmp/islaris-bench-XXXXXX";
  std::string Root = ::mkdtemp(DirTmpl);
  std::string Sock = Root + "/d.sock";

  server::ServerConfig Cfg;
  Cfg.SocketPath = Sock;
  Cfg.Workers = 4;
  Cfg.MaxQueueDepth = 1u << 14;
  Cfg.CacheDir = Root + "/cache";
  server::Server S(Cfg);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
    return 2;
  }

  constexpr unsigned Keys = 48;
  constexpr unsigned WarmRequests = 480;
  constexpr unsigned FleetRequests = 2000;
  constexpr unsigned ClientThreads = 8;

  std::printf("=== islarisd load generation ===\n\n");

  // The first request pays the one-time model parse; keep that out of the
  // cold latency distribution (it is the daemon's startup cost, not a
  // per-request one).
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    server::TraceRequest W = requestFor(0);
    W.Opcode |= 0xfffu << 10; // an immediate outside the key range
    server::Client::TraceResult R;
    if (!C.runTrace(W, R, Err) || !R.Ok) {
      std::fprintf(stderr, "bench_server: warmup failed: %s\n", Err.c_str());
      return 2;
    }
  }

  // --- Cold phase: each distinct key once, serially (fresh executions).
  Phase Cold;
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    Clock::time_point T0 = Clock::now();
    for (unsigned K = 0; K < Keys; ++K) {
      Clock::time_point R0 = Clock::now();
      server::Client::TraceResult R;
      if (!C.runTrace(requestFor(K), R, Err) || !R.Ok)
        ++Cold.Failures;
      Cold.LatMs.push_back(msSince(R0));
    }
    Cold.WallSeconds = msSince(T0) / 1e3;
  }

  // --- Warm phase: the same keys again, serially, from a fresh client —
  // the unloaded warm latency a single caller observes.
  Phase Warm;
  {
    server::Client C;
    if (!C.connect(Sock, Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      return 2;
    }
    Clock::time_point T0 = Clock::now();
    for (unsigned I = 0; I < WarmRequests; ++I) {
      Clock::time_point R0 = Clock::now();
      server::Client::TraceResult R;
      if (!C.runTrace(requestFor(I % Keys), R, Err) || !R.Ok)
        ++Warm.Failures;
      Warm.LatMs.push_back(msSince(R0));
    }
    Warm.WallSeconds = msSince(T0) / 1e3;
  }

  // --- Fleet phase: the same keys, thousands of times, from concurrent
  // clients (one connection per thread, as real clients would).
  Phase Fleet;
  {
    std::vector<std::vector<double>> PerThread(ClientThreads);
    std::vector<unsigned> Fail(ClientThreads, 0);
    std::atomic<unsigned> Next{0};
    Clock::time_point T0 = Clock::now();
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < ClientThreads; ++W)
      Ts.emplace_back([&, W] {
        server::Client C;
        std::string E;
        if (!C.connect(Sock, E)) {
          ++Fail[W];
          return;
        }
        while (true) {
          unsigned I = Next.fetch_add(1, std::memory_order_relaxed);
          if (I >= FleetRequests)
            return;
          Clock::time_point R0 = Clock::now();
          server::Client::TraceResult R;
          if (!C.runTrace(requestFor(I % Keys), R, E) || !R.Ok)
            ++Fail[W];
          PerThread[W].push_back(msSince(R0));
        }
      });
    for (std::thread &T : Ts)
      T.join();
    Fleet.WallSeconds = msSince(T0) / 1e3;
    for (unsigned W = 0; W < ClientThreads; ++W) {
      Fleet.LatMs.insert(Fleet.LatMs.end(), PerThread[W].begin(),
                         PerThread[W].end());
      Fleet.Failures += Fail[W];
    }
  }

  server::ServerStats St = S.stats();
  S.requestShutdown();
  S.wait();

  double ColdP50 = pct(Cold.LatMs, 0.50), ColdP95 = pct(Cold.LatMs, 0.95),
         ColdP99 = pct(Cold.LatMs, 0.99);
  double WarmP50 = pct(Warm.LatMs, 0.50), WarmP95 = pct(Warm.LatMs, 0.95),
         WarmP99 = pct(Warm.LatMs, 0.99);
  double FleetP50 = pct(Fleet.LatMs, 0.50), FleetP95 = pct(Fleet.LatMs, 0.95),
         FleetP99 = pct(Fleet.LatMs, 0.99);
  double FleetRps = double(Fleet.LatMs.size()) / Fleet.WallSeconds;

  std::printf("phase |     n | threads |   p50 ms |   p95 ms |   p99 ms |  req/s\n");
  std::printf("--------------------------------------------------------------------\n");
  std::printf("cold  | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Cold.LatMs.size(), 1u, ColdP50, ColdP95, ColdP99,
              double(Cold.LatMs.size()) / Cold.WallSeconds);
  std::printf("warm  | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n",
              Warm.LatMs.size(), 1u, WarmP50, WarmP95, WarmP99,
              double(Warm.LatMs.size()) / Warm.WallSeconds);
  std::printf("fleet | %5zu | %7u | %8.3f | %8.3f | %8.3f | %6.0f\n\n",
              Fleet.LatMs.size(), ClientThreads, FleetP50, FleetP95, FleetP99,
              FleetRps);
  std::printf("server: executed=%llu warm_hits=%llu dedup_fanout=%llu "
              "rejected=%llu\n\n",
              (unsigned long long)St.Executed,
              (unsigned long long)St.WarmHits,
              (unsigned long long)St.DedupFanout,
              (unsigned long long)St.Rejected);

  bool NoFailures =
      Cold.Failures == 0 && Warm.Failures == 0 && Fleet.Failures == 0;
  // Dedup attach counts as warm service here: either way the request did
  // not pay for its own execution.  Everything after the cold phase (plus
  // the warmup request) should have been served from resident state.
  bool WarmServed =
      St.WarmHits + St.DedupFanout >= uint64_t(WarmRequests + FleetRequests);
  bool Speedup = WarmP50 * 10.0 <= ColdP50;
  std::printf("  no failed requests .......................... %s\n",
              NoFailures ? "yes" : "NO");
  std::printf("  warm+fleet served without re-execution ...... %s\n",
              WarmServed ? "yes" : "NO");
  std::printf("  warm p50 at least 10x below cold p50 ........ %s "
              "(%.3f ms vs %.3f ms)\n",
              Speedup ? "yes" : "NO", WarmP50, ColdP50);

  std::FILE *J = std::fopen("BENCH_server.json", "w");
  if (J) {
    std::fprintf(
        J,
        "{\"bench\":\"server\",\"keys\":%u,\"client_threads\":%u,"
        "\"cold\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f},"
        "\"warm\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f},"
        "\"fleet\":{\"n\":%zu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
        "\"wall_s\":%.4f,\"req_per_s\":%.1f},"
        "\"server\":{\"executed\":%llu,\"warm_hits\":%llu,"
        "\"dedup_fanout\":%llu},"
        "\"warm_p50_speedup\":%.1f}\n",
        Keys, ClientThreads, Cold.LatMs.size(), ColdP50, ColdP95, ColdP99,
        Cold.WallSeconds, Warm.LatMs.size(), WarmP50, WarmP95, WarmP99,
        Warm.WallSeconds, Fleet.LatMs.size(), FleetP50, FleetP95, FleetP99,
        Fleet.WallSeconds, FleetRps, (unsigned long long)St.Executed,
        (unsigned long long)St.WarmHits, (unsigned long long)St.DedupFanout,
        WarmP50 > 0 ? ColdP50 / WarmP50 : 0.0);
    std::fclose(J);
    std::printf("\n  wrote BENCH_server.json\n");
  }

  std::error_code EC;
  fs::remove_all(Root, EC);
  return NoFailures && WarmServed && Speedup ? 0 : 1;
}
