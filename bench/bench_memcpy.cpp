//===- bench/bench_memcpy.cpp - Trace simplification ablation (E5) -----------------===//
//
// Two claims around the §2.5 memcpy verification:
//
//  1. Isla's trace simplification matters: with register-read caching and
//     sink-only naming off (the unsimplified baseline), the traces carry
//     far more events into the proof engine.  (The §7 Bedrock comparison
//     is about total verification cost on the same memcpy; our baseline
//     plays the "more expensive pipeline" role.)
//  2. Bounded-length scaling: verification cost grows with the copied
//     byte count (the bounded-array substitution's knob).
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "isla/Executor.h"
#include "models/Models.h"

#include <cstdio>

using namespace islaris;

int main() {
  // --- Part 1: event-count ablation per memcpy opcode. ---
  namespace e = arch::aarch64::enc;
  const std::pair<const char *, uint32_t> Ops[] = {
      {"cbz x2, .L1", e::cbz(2, 28)},
      {"mov x3, #0", e::movz(3, 0)},
      {"ldrb w4, [x1, x3]", e::ldrReg(0, 4, 1, 3)},
      {"strb w4, [x0, x3]", e::strReg(0, 4, 0, 3)},
      {"add x3, x3, #1", e::addImm(3, 3, 1)},
      {"cmp x2, x3", e::cmpReg(2, 3)},
      {"bne .L3", e::bcond(arch::aarch64::Cond::NE, -16)},
      {"ret", e::ret()},
  };
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::ExecOptions Simplified; // defaults
  isla::ExecOptions Baseline;
  Baseline.CacheRegReads = false;
  Baseline.SinksOnly = false;

  std::printf("Trace simplification ablation (events per instruction):\n\n");
  std::printf("%-20s | %10s | %12s | %s\n", "instruction", "simplified",
              "unsimplified", "ratio");
  std::printf("-------------------------------------------------------------"
              "\n");
  unsigned TotS = 0, TotU = 0;
  for (const auto &[Name, Op] : Ops) {
    isla::ExecResult S =
        Ex.run(isla::OpcodeSpec::concrete(Op), {}, Simplified);
    isla::ExecResult U =
        Ex.run(isla::OpcodeSpec::concrete(Op), {}, Baseline);
    if (!S.Ok || !U.Ok) {
      std::fprintf(stderr, "%s: %s%s\n", Name, S.Error.c_str(),
                   U.Error.c_str());
      return 1;
    }
    TotS += S.Stats.Events;
    TotU += U.Stats.Events;
    std::printf("%-20s | %10u | %12u | %.1fx\n", Name, S.Stats.Events,
                U.Stats.Events, double(U.Stats.Events) / S.Stats.Events);
  }
  std::printf("%-20s | %10u | %12u | %.1fx\n", "total (one loop pass)",
              TotS, TotU, double(TotU) / TotS);
  std::printf("\n(The paper reports 169 events for the whole Arm memcpy; "
              "simplification is what keeps the proof-engine input at that "
              "scale.)\n\n");

  // --- Part 2: end-to-end verification cost vs. copy length. ---
  std::printf("Bounded-length scaling (Arm memcpy, end-to-end):\n\n");
  std::printf("%3s | %8s | %9s | %9s | %8s\n", "N", "ITL ev.", "verify s",
              "solver q", "status");
  std::printf("---------------------------------------------------\n");
  for (unsigned N : {0u, 1u, 2u, 4u, 8u}) {
    frontend::CaseResult R = frontend::runMemcpyArm(N);
    std::printf("%3u | %8u | %9.3f | %9llu | %s\n", N, R.ItlEvents,
                R.Proof.TotalSeconds,
                (unsigned long long)R.Proof.SolverQueries,
                R.Ok ? "verified" : R.Error.c_str());
    if (!R.Ok)
      return 1;
  }

  // --- Part 3: whole-pipeline comparison on unsimplified traces (the
  // paper's Bedrock-style "total cost" angle: the same verification, but
  // with Isla's simplifications disabled). ---
  std::printf("\nEnd-to-end verification, simplified vs unsimplified "
              "traces (N = 4):\n\n");
  frontend::CaseResult S = frontend::runMemcpyArm(4, true);
  frontend::CaseResult U = frontend::runMemcpyArm(4, false);
  if (!S.Ok || !U.Ok) {
    std::fprintf(stderr, "failed: %s%s\n", S.Error.c_str(),
                 U.Error.c_str());
    return 1;
  }
  std::printf("%-13s | %8s | %10s | %9s | %9s\n", "pipeline", "ITL ev.",
              "events wp'd", "solver q", "verify s");
  std::printf("------------------------------------------------------------"
              "\n");
  std::printf("%-13s | %8u | %10u | %9llu | %9.3f\n", "simplified",
              S.ItlEvents, S.Proof.EventsProcessed,
              (unsigned long long)S.Proof.SolverQueries,
              S.Proof.TotalSeconds);
  std::printf("%-13s | %8u | %10u | %9llu | %9.3f\n", "unsimplified",
              U.ItlEvents, U.Proof.EventsProcessed,
              (unsigned long long)U.Proof.SolverQueries,
              U.Proof.TotalSeconds);
  std::printf("\n(The verification still succeeds on the raw traces; the "
              "simplified pipeline processes %.1fx fewer events.)\n",
              double(U.Proof.EventsProcessed) /
                  double(S.Proof.EventsProcessed));
  return 0;
}
