//===- bench/bench_solver.cpp - Bitvector-automation micro-benchmarks (E8) ---------===//
//
// The paper attributes much of its verification time to "the bitvector
// automation" (§6).  These google-benchmark micro-benchmarks measure our
// QF_BV solver on the side-condition shapes the case studies generate:
// address containment, flag-condition implications, move-wide patching
// equalities, and the rbit spec/trace equivalence.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <benchmark/benchmark.h>

using namespace islaris;
using namespace islaris::smt;

namespace {

/// Array containment: prove (base + i) - base < n under i < n.
void BM_AddressContainment(benchmark::State &State) {
  for (auto _ : State) {
    TermBuilder TB;
    Solver S(TB);
    const Term *Base = TB.freshVar(Sort::bitvec(64), "base");
    const Term *I = TB.freshVar(Sort::bitvec(64), "i");
    S.assertTerm(TB.bvUlt(I, TB.constBV(64, uint64_t(State.range(0)))));
    const Term *Off = TB.bvSub(TB.bvAdd(Base, I), Base);
    bool Ok = S.isValid(
        TB.bvUlt(Off, TB.constBV(64, uint64_t(State.range(0)))));
    if (!Ok)
      State.SkipWithError("containment not proven");
  }
}
BENCHMARK(BM_AddressContainment)->Arg(4)->Arg(16)->Arg(64);

/// Flag implication: the cmp/b.ne side condition of the memcpy loop.
void BM_FlagCondition(benchmark::State &State) {
  for (auto _ : State) {
    TermBuilder TB;
    Solver S(TB);
    const Term *N = TB.constBV(64, 4);
    const Term *M = TB.freshVar(Sort::bitvec(64), "m");
    const Term *M1 = TB.bvAdd(M, TB.constBV(64, 1));
    S.assertTerm(TB.bvUlt(M, N));
    S.assertTerm(TB.notTerm(TB.eqTerm(TB.bvSub(N, M1), TB.constBV(64, 0))));
    bool Ok = S.isValid(TB.bvUlt(M1, N));
    if (!Ok)
      State.SkipWithError("flag implication not proven");
  }
}
BENCHMARK(BM_FlagCondition);

/// The pKVM move-wide relocation equality: masked-insert chain equals the
/// shift-or composition.
void BM_MoveWidePatch(benchmark::State &State) {
  for (auto _ : State) {
    TermBuilder TB;
    Solver S(TB);
    const Term *Imm[4] = {
        TB.freshVar(Sort::bitvec(16), "i0"),
        TB.freshVar(Sort::bitvec(16), "i1"),
        TB.freshVar(Sort::bitvec(16), "i2"),
        TB.freshVar(Sort::bitvec(16), "i3"),
    };
    // movz/movk chain.
    const Term *V = TB.zeroExtend(48, Imm[0]);
    for (int K = 1; K < 4; ++K) {
      const Term *Mask = TB.constBV(BitVec(64, 0xffffull).shl(16 * K));
      V = TB.bvOr(TB.bvAnd(V, TB.bvNot(Mask)),
                  TB.bvShl(TB.zeroExtend(48, Imm[K]),
                           TB.constBV(64, 16 * K)));
    }
    // Shift-or composition.
    const Term *W = TB.zeroExtend(48, Imm[0]);
    for (int K = 1; K < 4; ++K)
      W = TB.bvOr(W, TB.bvShl(TB.zeroExtend(48, Imm[K]),
                              TB.constBV(64, 16 * K)));
    if (!S.isValid(TB.eqTerm(V, W)))
      State.SkipWithError("move-wide equality not proven");
  }
}
BENCHMARK(BM_MoveWidePatch);

/// The rbit side condition: concat-of-extracts equals shift-and-mask.
void BM_RbitEquivalence(benchmark::State &State) {
  unsigned W = unsigned(State.range(0));
  for (auto _ : State) {
    TermBuilder TB;
    Solver S(TB);
    const Term *X = TB.freshVar(Sort::bitvec(W), "x");
    const Term *A = TB.extract(0, 0, X);
    for (unsigned I = 1; I < W; ++I)
      A = TB.concat(A, TB.extract(I, I, X));
    const Term *B = TB.constBV(W, 0);
    for (unsigned I = 0; I < W; ++I)
      B = TB.bvOr(B, TB.bvShl(TB.bvAnd(TB.bvLShr(X, TB.constBV(W, I)),
                                       TB.constBV(W, 1)),
                              TB.constBV(W, W - 1 - I)));
    if (!S.isValid(TB.eqTerm(A, B)))
      State.SkipWithError("rbit equivalence not proven");
  }
}
BENCHMARK(BM_RbitEquivalence)->Arg(8)->Arg(32)->Arg(64);

/// Warm re-check of an identical side condition: after the first solve the
/// in-run memo table answers, so this measures the cached query path the
/// proof engine hits whenever branch contexts share pure prefixes.
void BM_MemoizedRecheck(benchmark::State &State) {
  TermBuilder TB;
  Solver S(TB);
  const Term *Base = TB.freshVar(Sort::bitvec(64), "base");
  const Term *I = TB.freshVar(Sort::bitvec(64), "i");
  S.assertTerm(TB.bvUlt(I, TB.constBV(64, 64)));
  const Term *Off = TB.bvSub(TB.bvAdd(Base, I), Base);
  const Term *Goal = TB.bvUlt(Off, TB.constBV(64, 64));
  if (!S.isValid(Goal)) { // cold solve populating the memo
    State.SkipWithError("containment not proven");
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(S.isValid(Goal));
}
BENCHMARK(BM_MemoizedRecheck);

/// Incremental push/pop with a *fresh* goal per frame: the shared context
/// circuit ((base + i) - base) is bit-blasted once and its clauses reused,
/// so each iteration only blasts the new comparison constant.  Before the
/// persistent-core rework every frame rebuilt the entire CNF.
void BM_IncrementalReblast(benchmark::State &State) {
  TermBuilder TB;
  Solver S(TB);
  const Term *Base = TB.freshVar(Sort::bitvec(64), "base");
  const Term *I = TB.freshVar(Sort::bitvec(64), "i");
  S.assertTerm(TB.bvUlt(I, TB.constBV(64, 64)));
  const Term *Off = TB.bvSub(TB.bvAdd(Base, I), Base);
  uint64_t K = 64;
  for (auto _ : State) {
    S.push();
    S.assertTerm(TB.bvUlt(Off, TB.constBV(64, ++K)));
    benchmark::DoNotOptimize(int(S.check()));
    S.pop();
  }
}
BENCHMARK(BM_IncrementalReblast);

/// Sorted-array lower-bound implication (binary search back-edge).
void BM_SortedImplication(benchmark::State &State) {
  for (auto _ : State) {
    TermBuilder TB;
    Solver S(TB);
    const Term *Key = TB.freshVar(Sort::bitvec(64), "key");
    const Term *E0 = TB.freshVar(Sort::bitvec(64), "e0");
    const Term *E1 = TB.freshVar(Sort::bitvec(64), "e1");
    S.assertTerm(TB.bvSle(E0, E1));
    S.assertTerm(TB.bvSlt(E1, Key));
    if (!S.isValid(TB.bvSlt(E0, Key)))
      State.SkipWithError("transitivity not proven");
  }
}
BENCHMARK(BM_SortedImplication);

} // namespace

BENCHMARK_MAIN();
