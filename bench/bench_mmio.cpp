//===- bench/bench_mmio.cpp - The UART MMIO specification (E6) --------------------===//
//
// Reruns the §6 UART case study several times and reports the cost of
// verifying machine code against the srec/scons label-sequence
// specification, plus the concrete poll-loop behaviour under the ITL
// semantics for devices that become ready after k polls.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"
#include "itl/OpSem.h"

#include <algorithm>
#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;
using smt::Value;

namespace {

/// A UART device model that reports TX-empty after \p ReadyAfter polls.
class UartDevice : public itl::MmioOracle {
public:
  explicit UartDevice(unsigned ReadyAfter) : Remaining(ReadyAfter) {}
  BitVec mmioRead(uint64_t, unsigned NBytes) override {
    if (Remaining == 0)
      return BitVec(NBytes * 8, 1u << 5);
    --Remaining;
    return BitVec(NBytes * 8, 0);
  }

private:
  unsigned Remaining;
};

} // namespace

int main() {
  std::printf("UART putc verification against spec(s) = srec(...):\n\n");
  frontend::CaseResult R = frontend::runUart();
  if (!R.Ok) {
    std::fprintf(stderr, "FAILED: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("  verified: %u instructions, %u ITL events, %u paths "
              "(ready + retry)\n",
              R.AsmInstrs, R.ItlEvents, R.Proof.PathsVerified);
  std::printf("  isla %.3fs, automation %.3fs, side conditions %.3fs\n\n",
              R.IslaSeconds, R.Proof.automationSeconds(),
              R.Proof.SideCondSeconds);

  // Concrete poll-loop executions: the verified spec promises the write of
  // the character follows some number of LSR reads; check the labels.
  namespace e = arch::aarch64::enc;
  constexpr uint64_t Lsr = 0x3f215054, Io = 0x3f215040;
  arch::aarch64::Asm A;
  A.org(0x9000);
  A.put(e::movz(1, Lsr & 0xffff));
  A.put(e::movk(1, uint16_t(Lsr >> 16), 1));
  A.label("poll");
  A.put(e::ldrImm(2, 2, 1, 0));
  A.tbz(2, 5, "poll");
  A.put(e::nop());
  A.put(e::movz(3, Io & 0xffff));
  A.put(e::movk(3, uint16_t(Io >> 16), 1));
  A.put(e::strImm(2, 0, 3, 0));
  A.put(e::ret());

  frontend::Verifier V(frontend::aarch64());
  V.addCode(A.finish());
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  std::string Err;
  if (!V.generateTraces(Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }

  std::printf("Concrete poll-loop runs (device ready after k polls):\n\n");
  std::printf("%3s | %11s | %s\n", "k", "MMIO labels", "label sequence");
  std::printf("--------------------------------------------------------\n");
  for (unsigned K : {0u, 1u, 3u, 8u}) {
    itl::MachineState S;
    S.PcReg = "_PC";
    for (int I = 0; I <= 30; ++I)
      S.setReg(arch::aarch64::xreg(unsigned(I)),
               Value(BitVec(64, I == 0 ? 'X' : 0)));
    for (const char *F : {"N", "Z", "C", "V", "D", "A", "I", "F"})
      S.setReg(Reg("PSTATE", F), Value(BitVec(1, 0)));
    S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b01)));
    S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
    S.setReg(Reg("SCTLR_EL1"), Value(BitVec(64, 0)));
    S.setReg(Reg("_PC"), Value(BitVec(64, 0x9000)));
    S.Instrs = V.instrMap();

    UartDevice Dev(K);
    itl::Interpreter Interp(V.builder(), &Dev);
    auto Paths = Interp.runProgram(S, 200);
    for (const auto &P : Paths) {
      // Only the completed execution (the one that reached the IO write);
      // the other Top paths are prefixes pruned at an infeasible branch.
      if (P.Out != itl::Outcome::Top || P.Labels.empty() ||
          !std::any_of(P.Labels.begin(), P.Labels.end(), [](const auto &L) {
            return L.K == itl::Label::Kind::Write;
          }))
        continue;
      std::string Seq;
      for (const auto &L : P.Labels) {
        if (L.K == itl::Label::Kind::Read)
          Seq += "R(LSR) ";
        else if (L.K == itl::Label::Kind::Write)
          Seq += "W(IO,'" + std::string(1, char(L.Data.toUInt64())) + "') ";
        else
          Seq += "E ";
      }
      std::printf("%3u | %11zu | %s\n", K, P.Labels.size() - 1,
                  Seq.c_str());
    }
  }
  std::printf("\nEvery sequence is a member of "
              "srec(R. exists b. scons(R(LSR,b), b[5] ? scons(W(IO,c), s) "
              ": R)) — the verified specification.\n");
  return 0;
}
