//===- bench/bench_validation.cpp - Translation validation (E7) --------------------===//
//
// The §5 evaluation: validate the Isla trace of every instruction in the
// RISC-V memcpy binary against the reference model semantics (and, as an
// extension the paper found infeasible for the full Arm model, the Arm
// memcpy too).  Reports per-opcode path counts, coverage, and time.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "support/Guard.h"
#include "validation/Validator.h"

#include <chrono>
#include <cstdio>

using namespace islaris;

namespace {

bool validateSet(const char *Title, const sail::Model &M,
                 const std::string &PcName,
                 const std::vector<std::pair<const char *, uint32_t>> &Ops) {
  std::printf("%s\n", Title);
  std::printf("%-22s | %8s | %5s | %8s | %6s | %8s | %s\n", "instruction",
              "opcode", "paths", "covered", "trials", "time ms", "result");
  std::printf("------------------------------------------------------------"
              "--------------------\n");
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  // Harness guards (ROADMAP follow-up): a wedged solver fails one opcode's
  // row with an attributed guard Diag instead of hanging the bench.
  support::RunLimits Limits;
  Limits.SolverCheckSeconds = 10;
  Limits.InstrSeconds = 120;
  support::CancelToken Cancel = support::CancelToken::create();
  bool AllOk = true;
  for (const auto &[Name, Op] : Ops) {
    auto T0 = std::chrono::steady_clock::now();
    isla::ExecResult R =
        Ex.run(isla::OpcodeSpec::concrete(Op), isla::Assumptions());
    if (!R.Ok) {
      std::printf("%-22s | %08x | trace generation failed: %s\n", Name, Op,
                  R.Error.c_str());
      AllOk = false;
      continue;
    }
    validation::ValidationResult VR = validation::validateInstruction(
        M, TB, Op, isla::Assumptions(), R.Trace, PcName, 8, Op, &Limits,
        Cancel);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    std::printf("%-22s | %08x | %5u | %8u | %6u | %8.1f | %s\n", Name, Op,
                VR.Paths, VR.PathsCovered, VR.Trials, Ms,
                VR.Ok ? "refined" : VR.Error.c_str());
    AllOk = AllOk && VR.Ok;
  }
  std::printf("\n");
  return AllOk;
}

} // namespace

int main() {
  namespace rv = arch::rv64::enc;
  namespace a64 = arch::aarch64::enc;
  using arch::rv64::A0;
  using arch::rv64::A1;
  using arch::rv64::A2;
  using arch::rv64::A3;

  bool Ok = validateSet(
      "RISC-V memcpy binary (the paper's Theorem 2 evaluation set):",
      models::rv64Model(), "PC",
      {{"beqz a2, .L2", rv::beqz(A2, 28)},
       {"lb a3, 0(a1)", rv::lb(A3, A1, 0)},
       {"sb a3, 0(a0)", rv::sb(A3, A0, 0)},
       {"addi a2, a2, -1", rv::addi(A2, A2, -1)},
       {"addi a0, a0, 1", rv::addi(A0, A0, 1)},
       {"addi a1, a1, 1", rv::addi(A1, A1, 1)},
       {"bnez a2, .L1", rv::bnez(A2, -20)},
       {"ret", rv::ret()}});

  Ok &= validateSet(
      "Armv8-A memcpy binary (infeasible against the Coq model in the "
      "paper; tractable here):",
      models::aarch64Model(), "_PC",
      {{"cbz x2, .L1", a64::cbz(2, 28)},
       {"mov x3, #0", a64::movz(3, 0)},
       {"ldrb w4, [x1, x3]", a64::ldrReg(0, 4, 1, 3)},
       {"strb w4, [x0, x3]", a64::strReg(0, 4, 0, 3)},
       {"add x3, x3, #1", a64::addImm(3, 3, 1)},
       {"cmp x2, x3", a64::cmpReg(2, 3)},
       {"bne .L3", a64::bcond(arch::aarch64::Cond::NE, -16)},
       {"ret", a64::ret()}});

  std::printf("%s\n", Ok ? "All traces validated against the reference "
                           "model semantics."
                         : "VALIDATION FAILURES — see above.");
  return Ok ? 0 : 1;
}
