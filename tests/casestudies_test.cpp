//===- tests/casestudies_test.cpp - End-to-end case studies -------------------===//

#include "frontend/CaseStudies.h"

#include <gtest/gtest.h>

using namespace islaris::frontend;

namespace {

TEST(CaseStudyTest, MemcpyArm) {
  CaseResult R = runMemcpyArm(4);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.AsmInstrs, 8u);
  EXPECT_GT(R.ItlEvents, 50u);
}

TEST(CaseStudyTest, MemcpyArmZeroLength) {
  CaseResult R = runMemcpyArm(0);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(CaseStudyTest, MemcpyRv) {
  CaseResult R = runMemcpyRv(4);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.AsmInstrs, 8u);
}

} // namespace

TEST(CaseStudyTest, Hvc) {
  islaris::frontend::CaseResult R = islaris::frontend::runHvc();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.AsmInstrs, 14u);
}

TEST(CaseStudyTest, Unaligned) {
  islaris::frontend::CaseResult R = islaris::frontend::runUnaligned();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.AsmInstrs, 1u);
}

TEST(CaseStudyTest, Uart) {
  islaris::frontend::CaseResult R = islaris::frontend::runUart();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Proof.PathsVerified, 2u);
}

TEST(CaseStudyTest, Rbit) {
  islaris::frontend::CaseResult R = islaris::frontend::runRbit();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.AsmInstrs, 2u);
}

TEST(CaseStudyTest, Pkvm) {
  islaris::frontend::CaseResult R = islaris::frontend::runPkvm();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.AsmInstrs, 30u);
}

TEST(CaseStudyTest, BinSearchArm) {
  islaris::frontend::CaseResult R = islaris::frontend::runBinSearchArm(4);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(CaseStudyTest, BinSearchRv) {
  islaris::frontend::CaseResult R = islaris::frontend::runBinSearchRv(4);
  EXPECT_TRUE(R.Ok) << R.Error;
}
