//===- tests/isla_test.cpp - Symbolic executor tests ---------------------------===//

#include "isla/Executor.h"
#include "itl/OpSem.h"
#include "sail/Interpreter.h"
#include "sail/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace islaris;
using namespace islaris::isla;
using islaris::itl::MachineState;
using islaris::itl::Reg;
using smt::Term;
using smt::Value;

namespace {

/// A small architecture with banked stack pointers and a flag-driven branch,
/// shaped like the Armv8-A fragments of Figs. 2, 3 and 6: opcode 0x91xxxxxx
/// is "add sp, sp, imm12"; opcode 0x54xxxxxx is "beq imm" (PC-relative);
/// anything else is UNDEFINED.
const char *MiniArch = R"(
register PSTATE : struct { EL : bits(2), SP : bits(1), Z : bits(1) }
register SP_EL0 : bits(64)
register SP_EL1 : bits(64)
register SP_EL2 : bits(64)
register SP_EL3 : bits(64)
register _PC : bits(64)

function aget_SP() -> bits(64) = {
  if PSTATE.SP == 0b0 then { return SP_EL0; }
  else if PSTATE.EL == 0b00 then { return SP_EL0; }
  else if PSTATE.EL == 0b01 then { return SP_EL1; }
  else if PSTATE.EL == 0b10 then { return SP_EL2; }
  else { return SP_EL3; };
}

function aset_SP(value : bits(64)) -> unit = {
  if PSTATE.SP == 0b0 then { SP_EL0 = value; }
  else if PSTATE.EL == 0b00 then { SP_EL0 = value; }
  else if PSTATE.EL == 0b01 then { SP_EL1 = value; }
  else if PSTATE.EL == 0b10 then { SP_EL2 = value; }
  else { SP_EL3 = value; };
}

function next_pc() -> unit = { _PC = _PC + 0x0000000000000004; }

function add_sp_immediate(imm12 : bits(12)) -> unit = {
  let op1 = aget_SP();
  let imm = zero_extend(imm12, 64);
  // The 128-bit vestige of AddWithCarry (Fig. 3).
  let wide = zero_extend(op1, 128) + zero_extend(imm, 128);
  aset_SP(wide[63 .. 0]);
  next_pc();
}

function branch_eq(imm19 : bits(19)) -> unit = {
  let offset = sign_extend(imm19 @ 0b00, 64);
  if PSTATE.Z == 0b1 then { _PC = _PC + offset; }
  else { next_pc(); };
}

function decode(opcode : bits(32)) -> unit = {
  if opcode[31 .. 24] == 0x91 then {
    add_sp_immediate(opcode[21 .. 10]);
  } else if opcode[31 .. 24] == 0x54 then {
    branch_eq(opcode[23 .. 5]);
  } else {
    throw("UNDEFINED");
  };
}
)";

std::unique_ptr<sail::Model> parseArch() {
  std::string Err;
  auto M = sail::parseModel(MiniArch, Err);
  EXPECT_TRUE(M != nullptr) << Err;
  return M;
}

// add sp, sp, #0x40: imm12=0x040 at [21:10] -> 0x91010000 | (0x40 << 10).
constexpr uint32_t AddSp64 = 0x91000000u | (0x40u << 10);
constexpr uint32_t BeqMinus16 = 0x54000000u | ((0x7fff0u & 0x7ffffu) << 5);

Assumptions el2Assumptions() {
  Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  return A;
}

TEST(ExecutorTest, AddSpLinearTraceUnderAssumptions) {
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult R = Ex.run(OpcodeSpec::concrete(AddSp64), el2Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  // Pruned to one linear path (Fig. 3): no cases at all.
  EXPECT_EQ(R.Trace.countPaths(), 1u);
  EXPECT_FALSE(R.Trace.hasCases());
  std::string S = R.Trace.toString();
  EXPECT_NE(S.find("(assume-reg |PSTATE| ((_ field |EL|)) "
                   "(_ struct (|EL| #b10)))"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("read-reg |SP_EL2|"), std::string::npos) << S;
  EXPECT_NE(S.find("write-reg |SP_EL2|"), std::string::npos) << S;
  EXPECT_NE(S.find("zero_extend 64"), std::string::npos) << S; // vestige
  EXPECT_EQ(S.find("SP_EL0"), std::string::npos) << S;         // pruned
}

TEST(ExecutorTest, AddSpForksWithoutAssumptions) {
  // §2.1: without the EL/SP constraints the trace distinguishes five cases.
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult R = Ex.run(OpcodeSpec::concrete(AddSp64), Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trace.countPaths(), 5u);
}

TEST(ExecutorTest, BeqHasTwoCasesWithAsserts) {
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult R = Ex.run(OpcodeSpec::concrete(BeqMinus16), Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trace.countPaths(), 2u);
  ASSERT_EQ(R.Trace.Cases.size(), 2u);
  // Each subtrace starts with an assert of the branch condition (Fig. 6).
  for (const itl::Trace &Sub : R.Trace.Cases) {
    ASSERT_FALSE(Sub.Events.empty());
    EXPECT_EQ(Sub.Events[0].K, itl::EventKind::Assert);
  }
}

TEST(ExecutorTest, UndefinedOpcodeIsAnError) {
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult R = Ex.run(OpcodeSpec::concrete(0xdeadbeef), Assumptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("UNDEFINED"), std::string::npos);
}

TEST(ExecutorTest, SymbolicImmediateStaysParametric) {
  // Symbolic imm12 field: the trace must be linear and mention the opcode
  // variable rather than a constant immediate.
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  OpcodeSpec Op = OpcodeSpec::symbolicField(0x91000000u | (3u << 22), 21, 10);
  // Bits 22/23 of add-imm are shift/flags selectors in real Arm; here the
  // decode only checks [31:24], so leave them concrete.
  Op = OpcodeSpec::symbolicField(AddSp64, 21, 10);
  ExecResult R = Ex.run(Op, el2Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.OpcodeVars.size(), 1u);
  EXPECT_EQ(R.OpcodeVars[0]->width(), 12u);
  EXPECT_EQ(R.Trace.countPaths(), 1u);
  EXPECT_NE(R.Trace.toString().find(R.OpcodeVars[0]->varName()),
            std::string::npos);
}

TEST(ExecutorTest, UnsimplifiedBaselineHasMoreEvents) {
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult Simplified =
      Ex.run(OpcodeSpec::concrete(AddSp64), el2Assumptions());
  ExecOptions Baseline;
  Baseline.CacheRegReads = false;
  Baseline.SinksOnly = false;
  ExecResult Unsimplified =
      Ex.run(OpcodeSpec::concrete(AddSp64), el2Assumptions(), Baseline);
  ASSERT_TRUE(Simplified.Ok && Unsimplified.Ok)
      << Simplified.Error << Unsimplified.Error;
  EXPECT_GT(Unsimplified.Stats.Events, Simplified.Stats.Events);
}

//===----------------------------------------------------------------------===//
// Differential test: symbolic trace semantics vs. concrete model semantics.
//===----------------------------------------------------------------------===//

MachineState randomArchState(std::mt19937_64 &Rng, uint64_t El,
                             uint64_t SpSel, uint64_t ZFlag) {
  MachineState S;
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, El)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, SpSel)));
  S.setReg(Reg("PSTATE", "Z"), Value(BitVec(1, ZFlag)));
  S.setReg(Reg("SP_EL0"), Value(BitVec(64, Rng())));
  S.setReg(Reg("SP_EL1"), Value(BitVec(64, Rng())));
  S.setReg(Reg("SP_EL2"), Value(BitVec(64, Rng())));
  S.setReg(Reg("SP_EL3"), Value(BitVec(64, Rng())));
  S.setReg(Reg("_PC"), Value(BitVec(64, Rng() & ~3ull)));
  return S;
}

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, TraceAgreesWithConcreteInterpreter) {
  auto M = parseArch();
  ASSERT_TRUE(M);
  smt::TermBuilder TB;
  Executor Ex(*M, TB);
  ExecResult R = Ex.run(OpcodeSpec::concrete(GetParam()), Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;

  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 12; ++Round) {
    MachineState Init = randomArchState(Rng, Rng() % 4, Rng() % 2, Rng() % 2);

    // Concrete model execution.
    MachineState SC = Init;
    sail::Interpreter CI(*M);
    auto CR = CI.callFunction(
        "decode", {Value(BitVec(32, GetParam()))}, SC);
    ASSERT_TRUE(CR.Ok) << CR.Error;

    // ITL trace execution.
    itl::Interpreter TI(TB);
    auto Paths = TI.runTrace(R.Trace, Init);
    // Exactly one path must survive (reach the end in TOP having run all
    // its events); it must agree with the concrete run on all registers.
    int Survivors = 0;
    for (const auto &P : Paths) {
      ASSERT_NE(P.Out, itl::Outcome::Bottom) << P.Reason;
      ASSERT_NE(P.Out, itl::Outcome::Stuck) << P.Reason;
      // A surviving path is one whose final PC was updated.
      if (P.Final.getReg(Reg("_PC"))->asBitVec() ==
              SC.getReg(Reg("_PC"))->asBitVec() &&
          P.Final.Regs.size() == SC.Regs.size()) {
        bool Match = true;
        for (const auto &[RegKey, Val] : SC.Regs)
          Match = Match && P.Final.getReg(RegKey) &&
                  *P.Final.getReg(RegKey) == Val;
        Survivors += Match;
      }
    }
    EXPECT_GE(Survivors, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Opcodes, DifferentialTest,
                         ::testing::Values(AddSp64, BeqMinus16,
                                           0x91000000u | (1u << 10)));

} // namespace
