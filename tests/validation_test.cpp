//===- tests/validation_test.cpp - Translation validation (§5) ----------------===//
//
// The paper's Theorem 2 workflow: prove every Isla trace of the RISC-V
// memcpy (and more) correct against the reference model semantics.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "validation/Validator.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::validation;
using islaris::itl::Reg;

namespace {

void validateAll(const sail::Model &M, const std::string &PcName,
                 const std::vector<uint32_t> &Opcodes,
                 const isla::Assumptions &A) {
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  for (uint32_t Op : Opcodes) {
    isla::ExecResult R = Ex.run(isla::OpcodeSpec::concrete(Op), A);
    ASSERT_TRUE(R.Ok) << BitVec(32, Op).toHexString() << ": " << R.Error;
    ValidationResult VR = validateInstruction(M, TB, Op, A, R.Trace, PcName,
                                              /*RandomTrials=*/6, Op);
    EXPECT_TRUE(VR.Ok) << BitVec(32, Op).toHexString() << ": " << VR.Error;
    EXPECT_EQ(VR.PathsCovered, VR.Paths) << BitVec(32, Op).toHexString();
    EXPECT_GT(VR.Trials, 0u);
  }
}

TEST(ValidationTest, RiscvMemcpyInstructions) {
  // Every distinct opcode in the Fig. 7 RISC-V memcpy binary (the paper's
  // §5 evaluation set).
  namespace e = arch::rv64::enc;
  validateAll(models::rv64Model(), "PC",
              {e::beqz(arch::rv64::A2, 28), e::lb(13, 11, 0),
               e::sb(13, 10, 0), e::addi(12, 12, -1), e::addi(10, 10, 1),
               e::addi(11, 11, 1), e::bnez(arch::rv64::A2, -20), e::ret()},
              isla::Assumptions());
}

TEST(ValidationTest, RiscvWiderInstructionSample) {
  namespace e = arch::rv64::enc;
  validateAll(models::rv64Model(), "PC",
              {e::lui(5, 0x12345), e::auipc(6, 0x1), e::add(7, 5, 6),
               e::sub(7, 5, 6), e::sltu(8, 5, 6), e::andi(9, 5, 0x7f),
               e::slli(10, 5, 7), e::srai(11, 5, 3), e::ld(12, 5, 8),
               e::sd(12, 5, 16), e::blt(5, 6, 32), e::bgeu(5, 6, -32),
               e::jal(1, 2048), e::jalr(1, 5, 4)},
              isla::Assumptions());
}

TEST(ValidationTest, ArmMemcpyInstructions) {
  // The paper found Armv8-A validation infeasible against the Coq model;
  // our reduced model makes it tractable, so run it as an extension.
  namespace e = arch::aarch64::enc;
  validateAll(models::aarch64Model(), "_PC",
              {e::cbz(2, 28), e::movz(3, 0), e::ldrReg(0, 4, 1, 3),
               e::strReg(0, 4, 0, 3), e::addImm(3, 3, 1), e::cmpReg(2, 3),
               e::bcond(arch::aarch64::Cond::NE, -16), e::ret()},
              isla::Assumptions());
}

TEST(ValidationTest, ArmAddSpUnderAssumptions) {
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  validateAll(models::aarch64Model(), "_PC", {0x910103ffu}, A);
}

TEST(ValidationTest, DetectsCorruptedTrace) {
  // Sanity: validation must reject a trace whose semantics were tampered
  // with (here: the immediate of addi is altered after generation).
  namespace e = arch::rv64::enc;
  smt::TermBuilder TB;
  isla::Executor Ex(models::rv64Model(), TB);
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::addi(10, 10, 1)),
             isla::Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  // Corrupt: find the define-const computing the sum and bias it.
  bool Corrupted = false;
  for (itl::Event &Ev : R.Trace.Events) {
    if (Ev.K == itl::EventKind::DefineConst &&
        Ev.Expr->kind() == smt::Kind::BVAdd) {
      Ev.Expr = TB.bvAdd(Ev.Expr, TB.constBV(64, 1));
      Corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(Corrupted) << R.Trace.toString();
  ValidationResult VR =
      validateInstruction(models::rv64Model(), TB, e::addi(10, 10, 1),
                          isla::Assumptions(), R.Trace, "PC", 4, 7);
  EXPECT_FALSE(VR.Ok);
}

} // namespace
