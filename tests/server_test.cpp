//===- tests/server_test.cpp - islarisd protocol & scheduling tests -------===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
// Covers the resident-server subsystem end to end:
//
//  - frame codec: round-trip (including byte-at-a-time delivery), the
//    longest-valid-prefix property, and precise rejection of truncated,
//    oversized, and checksum-corrupt frames;
//  - request/done payload codecs;
//  - live-server behavior over a real Unix socket: handshake, version
//    negotiation, malformed-input handling, admission control, round-robin
//    fairness under a flooding client, drain-on-shutdown delivery
//    guarantees, and clean-shutdown markers;
//  - the headline dedup claim: two clients concurrently requesting the
//    same trace trigger exactly one execution, and both receive the result
//    bit-identically — matching a direct BatchDriver run byte for byte.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"

#include "cache/BatchDriver.h"
#include "cache/Scrub.h"
#include "cache/TraceCache.h"
#include "models/Models.h"
#include "support/Wire.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace islaris;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

/// Self-cleaning scratch directory; also keeps socket paths short enough
/// for sockaddr_un.
struct TempDir {
  std::string Path;
  TempDir() {
    char T[] = "/tmp/islaris-srv-XXXXXX";
    Path = ::mkdtemp(T);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

server::ServerConfig baseConfig(const TempDir &D) {
  server::ServerConfig C;
  C.SocketPath = D.Path + "/d.sock";
  C.CacheDir = D.Path + "/cache";
  C.Workers = 1; // serial execution: deterministic scheduling tests
  return C;
}

/// add x0, x0, #imm — a distinct, cheap, concrete execution per imm.
server::TraceRequest addImm(unsigned Imm) {
  server::TraceRequest T;
  T.Arch = "aarch64";
  T.Opcode = 0x91000000u | ((Imm & 0xfffu) << 10);
  return T;
}

server::Request traceRequest(uint64_t Id, unsigned Imm) {
  server::Request R;
  R.Id = Id;
  R.K = server::Request::Kind::Trace;
  R.Trace = addImm(Imm);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame codec.
//===----------------------------------------------------------------------===//

TEST(FrameCodecTest, RoundTripByteAtATime) {
  std::vector<server::Frame> In = {
      {server::FrameType::Hello, "hi"},
      {server::FrameType::Trace, std::string("binary\0payload\n)", 16)},
      {server::FrameType::Pong, ""},
  };
  std::string Wire;
  for (const server::Frame &F : In)
    Wire += server::encodeFrame(F);

  // Deliver one byte per feed: every split point must be survivable.
  server::FrameReader R;
  std::vector<server::Frame> Out;
  for (char C : Wire) {
    R.feed(&C, 1);
    server::Frame F;
    while (R.next(F) == server::FrameReader::Status::Frame)
      Out.push_back(F);
  }
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    EXPECT_EQ(Out[I].Type, In[I].Type);
    EXPECT_EQ(Out[I].Payload, In[I].Payload);
  }
  EXPECT_EQ(R.buffered(), 0u);
}

TEST(FrameCodecTest, LongestValidPrefixThenMalformed) {
  std::string Wire = server::encodeFrame({server::FrameType::Ping, ""});
  Wire += server::encodeFrame({server::FrameType::Done, "abc"});
  Wire += "this is not a frame\n";

  server::FrameReader R;
  R.feed(Wire.data(), Wire.size());
  server::Frame F;
  EXPECT_EQ(R.next(F), server::FrameReader::Status::Frame);
  EXPECT_EQ(F.Type, server::FrameType::Ping);
  EXPECT_EQ(R.next(F), server::FrameReader::Status::Frame);
  EXPECT_EQ(F.Type, server::FrameType::Done);
  std::string Err;
  EXPECT_EQ(R.next(F, &Err), server::FrameReader::Status::Malformed);
  EXPECT_FALSE(Err.empty());
  // A dead stream stays dead even if valid bytes follow.
  std::string Valid = server::encodeFrame({server::FrameType::Pong, ""});
  R.feed(Valid.data(), Valid.size());
  EXPECT_EQ(R.next(F), server::FrameReader::Status::Malformed);
}

TEST(FrameCodecTest, ChecksumCorruptionIsMalformed) {
  std::string Wire = server::encodeFrame({server::FrameType::Stats, "payload"});
  Wire[Wire.size() - 3] ^= 0x20; // flip a payload byte under the checksum
  server::FrameReader R;
  R.feed(Wire.data(), Wire.size());
  server::Frame F;
  std::string Err;
  EXPECT_EQ(R.next(F, &Err), server::FrameReader::Status::Malformed);
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
}

TEST(FrameCodecTest, OversizedPayloadLengthIsMalformed) {
  // A header advertising more than MaxFramePayload must die at the header,
  // before any allocation on behalf of the corrupt length.
  std::ostringstream OS;
  OS << "(islaris-frame 1 trace " << (server::MaxFramePayload + 1)
     << " 0000000000000000)\n";
  std::string Wire = OS.str();
  server::FrameReader R;
  R.feed(Wire.data(), Wire.size());
  server::Frame F;
  EXPECT_EQ(R.next(F), server::FrameReader::Status::Malformed);
}

TEST(FrameCodecTest, PartialHeaderNeedsMore) {
  std::string Wire = server::encodeFrame({server::FrameType::Bye, ""});
  server::FrameReader R;
  // Any strict prefix is NeedMore, never Malformed.
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut) {
    server::FrameReader Fresh;
    Fresh.feed(Wire.data(), Cut);
    server::Frame F;
    EXPECT_EQ(Fresh.next(F), server::FrameReader::Status::NeedMore)
        << "prefix of " << Cut << " bytes";
  }
}

//===----------------------------------------------------------------------===//
// Payload codecs.
//===----------------------------------------------------------------------===//

TEST(PayloadCodecTest, TraceRequestRoundTrip) {
  server::Request In = traceRequest(42, 7);
  In.Trace.SymMask = 0x1f;
  In.Trace.Assumes.push_back({"PSTATE", "EL", 2, 2});
  In.Trace.Assumes.push_back({"R3", "", 64, 0xdeadbeefull});
  In.Trace.CacheRegReads = false;
  In.Trace.MaxPaths = 17;

  server::Request Out;
  ASSERT_TRUE(server::decodeRequest(server::encodeRequest(In), Out));
  EXPECT_EQ(Out.Id, 42u);
  EXPECT_EQ(Out.K, server::Request::Kind::Trace);
  EXPECT_EQ(Out.Trace.Arch, "aarch64");
  EXPECT_EQ(Out.Trace.Opcode, In.Trace.Opcode);
  EXPECT_EQ(Out.Trace.SymMask, 0x1fu);
  ASSERT_EQ(Out.Trace.Assumes.size(), 2u);
  EXPECT_EQ(Out.Trace.Assumes[0].Base, "PSTATE");
  EXPECT_EQ(Out.Trace.Assumes[0].Field, "EL");
  EXPECT_EQ(Out.Trace.Assumes[1].Value, 0xdeadbeefull);
  EXPECT_FALSE(Out.Trace.CacheRegReads);
  EXPECT_TRUE(Out.Trace.SinksOnly);
  EXPECT_EQ(Out.Trace.MaxPaths, 17u);
}

TEST(PayloadCodecTest, StudyAndStatsRoundTrip) {
  server::Request S;
  S.Id = 9;
  S.K = server::Request::Kind::Study;
  S.Study = "memcpy-arm";
  server::Request Out;
  ASSERT_TRUE(server::decodeRequest(server::encodeRequest(S), Out));
  EXPECT_EQ(Out.K, server::Request::Kind::Study);
  EXPECT_EQ(Out.Study, "memcpy-arm");

  server::Request St;
  St.Id = 10;
  St.K = server::Request::Kind::Stats;
  ASSERT_TRUE(server::decodeRequest(server::encodeRequest(St), Out));
  EXPECT_EQ(Out.K, server::Request::Kind::Stats);
  EXPECT_EQ(Out.Id, 10u);
}

TEST(PayloadCodecTest, MalformedRequestRejected) {
  server::Request Out;
  EXPECT_FALSE(server::decodeRequest("", Out));
  EXPECT_FALSE(server::decodeRequest("not a request", Out));
}

TEST(PayloadCodecTest, DoneRoundTrip) {
  server::DoneInfo In;
  In.Id = 5;
  In.Status = 2;
  In.Source = "failed";
  In.Attempts = 3;
  In.Seconds = 1.25;
  In.Error = "solver timeout";
  server::DoneInfo Out;
  ASSERT_TRUE(server::decodeDone(server::encodeDone(In), Out));
  EXPECT_EQ(Out.Id, 5u);
  EXPECT_EQ(Out.Status, 2u);
  EXPECT_EQ(Out.Source, "failed");
  EXPECT_EQ(Out.Attempts, 3u);
  EXPECT_DOUBLE_EQ(Out.Seconds, 1.25);
  EXPECT_EQ(Out.Error, "solver timeout");
}

TEST(PayloadCodecTest, IdPayloadRoundTrip) {
  uint64_t Id = 0;
  std::string Body;
  ASSERT_TRUE(server::decodeIdPayload(
      server::encodeIdPayload(77, "body with spaces\nand newlines"), Id,
      Body));
  EXPECT_EQ(Id, 77u);
  EXPECT_EQ(Body, "body with spaces\nand newlines");
  EXPECT_FALSE(server::decodeIdPayload("77", Id, Body));
}

//===----------------------------------------------------------------------===//
// Live server: handshake and malformed input.
//===----------------------------------------------------------------------===//

TEST(ServerTest, HandshakePingStats) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  EXPECT_TRUE(C.ping(Err)) << Err;

  std::string Json;
  ASSERT_TRUE(C.getStats(Json, Err)) << Err;
  EXPECT_NE(Json.find("\"requests\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"queue_depth\""), std::string::npos) << Json;

  S.requestShutdown();
  S.wait();
  EXPECT_FALSE(S.running());
}

TEST(ServerTest, WrongProtocolVersionGetsErrorAndClose) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  // A hello claiming a future protocol version must be answered with an
  // error frame and a close, not silence.
  std::ostringstream OS;
  support::wire::putU64(OS, server::ProtocolVersion + 41);
  ASSERT_TRUE(C.send({server::FrameType::Hello, OS.str()}, Err)) << Err;
  server::Frame F;
  ASSERT_TRUE(C.recv(F, Err)) << Err;
  EXPECT_EQ(F.Type, server::FrameType::Error);
  EXPECT_NE(F.Payload.find("version"), std::string::npos) << F.Payload;
  EXPECT_FALSE(C.recv(F, Err)); // connection closed

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, MalformedBytesGetErrorAndConnectionDies) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  ASSERT_TRUE(C.sendRaw("complete garbage, not a frame\n", Err)) << Err;
  server::Frame F;
  ASSERT_TRUE(C.recv(F, Err)) << Err;
  EXPECT_EQ(F.Type, server::FrameType::Error);
  EXPECT_FALSE(C.recv(F, Err)); // the stream is dead

  // A truncated-but-valid-prefix frame must NOT kill the connection: the
  // reader waits for the rest.
  server::Client C2;
  ASSERT_TRUE(C2.connect(S.socketPath(), Err)) << Err;
  std::string Wire = server::encodeFrame({server::FrameType::Ping, ""});
  ASSERT_TRUE(C2.sendRaw(Wire.substr(0, Wire.size() / 2), Err)) << Err;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(C2.sendRaw(Wire.substr(Wire.size() / 2), Err)) << Err;
  ASSERT_TRUE(C2.recv(F, Err)) << Err;
  EXPECT_EQ(F.Type, server::FrameType::Pong);

  EXPECT_GE(S.stats().Malformed, 1u);
  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, UnknownArchitectureAndStudyAreRejected) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;

  server::TraceRequest T = addImm(1);
  T.Arch = "m68k";
  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(T, TR, Err)) << Err;
  EXPECT_FALSE(TR.Ok);
  EXPECT_TRUE(TR.Rejected);
  EXPECT_NE(TR.RejectReason.find("architecture"), std::string::npos);

  server::Client::StudyResult SR;
  ASSERT_TRUE(C.runStudy("frobnicate", SR, Err)) << Err;
  EXPECT_TRUE(SR.Rejected);

  EXPECT_EQ(S.stats().Rejected, 2u);
  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, OversizedAssumeWidthIsRejectedAtAdmission) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;

  // A wire-supplied width near 2^32 would otherwise allocate ~512MB per
  // assume in the reader thread before the trace key is even computed.
  server::TraceRequest T = addImm(1);
  T.Assumes.push_back({"PSTATE", "EL", 0xfffffff0u, 2});
  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(T, TR, Err)) << Err;
  EXPECT_FALSE(TR.Ok);
  EXPECT_TRUE(TR.Rejected);
  EXPECT_NE(TR.RejectReason.find("width"), std::string::npos)
      << TR.RejectReason;

  // Zero-width assumes are equally meaningless.
  T.Assumes.clear();
  T.Assumes.push_back({"PSTATE", "EL", 0, 0});
  ASSERT_TRUE(C.runTrace(T, TR, Err)) << Err;
  EXPECT_TRUE(TR.Rejected);

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, DisconnectedClientsAreReaped) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Churn short-lived connections, then verify the connection table does
  // not retain them (each leaked Conn would pin an fd + a reader thread).
  for (int I = 0; I < 8; ++I) {
    server::Client C;
    ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
    ASSERT_TRUE(C.ping(Err)) << Err;
    C.close();
  }
  // The accept loop reaps on its 200ms poll tick.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_EQ(S.stats().Connections, 8u);
  EXPECT_EQ(S.openConnections(), 0u);

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, MalformedRequestNumbersGetErrorFrameAndDaemonSurvives) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // A frame that passes the envelope (type, length, checksum all valid)
  // but whose payload is not a decodable request: hostile tokens where the
  // codec expects numbers and length-prefixed strings.  The daemon must
  // answer with an attributed error frame, not die in the reader thread.
  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  ASSERT_TRUE(C.send({server::FrameType::Request,
                      "18446744073709551616999 not-a-length-prefixed-kind"},
                     Err))
      << Err;
  server::Frame F;
  ASSERT_TRUE(C.recv(F, Err)) << Err;
  EXPECT_EQ(F.Type, server::FrameType::Error);
  EXPECT_NE(F.Payload.find("malformed"), std::string::npos) << F.Payload;
  EXPECT_FALSE(C.recv(F, Err)); // that connection is closed...

  // ...but the daemon itself is unharmed: a fresh client gets real work.
  server::Client C2;
  ASSERT_TRUE(C2.connect(S.socketPath(), Err)) << Err;
  server::Client::TraceResult TR;
  ASSERT_TRUE(C2.runTrace(addImm(5), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok) << TR.Done.Error;
  EXPECT_GE(S.stats().Malformed, 1u);

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, PoisonedCacheEntryIsAMissNotACrash) {
  // A checksum-VALID entry with a hostile number inside used to reach
  // std::stoul in the trace-store parser on a worker thread and take the
  // whole daemon down via std::terminate.  It must instead be an
  // attributed miss: the corpse is quarantined and the request simply
  // re-executes fresh.
  TempDir D;
  std::string Err;
  server::TraceRequest T = addImm(0x77);
  std::string FreshText;
  {
    server::Server S(baseConfig(D));
    ASSERT_TRUE(S.start(Err)) << Err;
    server::Client C;
    ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
    server::Client::TraceResult TR;
    ASSERT_TRUE(C.runTrace(T, TR, Err)) << Err;
    ASSERT_TRUE(TR.Ok) << TR.Done.Error;
    EXPECT_EQ(TR.Done.Source, "fresh");
    FreshText = TR.EntryText;
    S.requestShutdown();
    S.wait();
  }

  // Replace the first stats number with 2^64 and re-wrap so the envelope
  // checksum still verifies — only the semantic parser can catch this.
  std::vector<fs::path> Entries;
  for (const auto &E :
       fs::recursive_directory_iterator(D.Path + "/cache"))
    if (E.is_regular_file() && E.path().extension() == ".itc")
      Entries.push_back(E.path());
  ASSERT_EQ(Entries.size(), 1u);
  std::string Raw;
  {
    std::ifstream In(Entries[0], std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    Raw = SS.str();
  }
  std::string Payload;
  ASSERT_EQ(cache::unwrapDurableEntry(Raw, Payload),
            cache::EnvelopeResult::Ok);
  size_t At = Payload.find("(stats ");
  ASSERT_NE(At, std::string::npos);
  size_t NumBegin = At + 7;
  size_t NumEnd = Payload.find(' ', NumBegin);
  ASSERT_NE(NumEnd, std::string::npos);
  Payload.replace(NumBegin, NumEnd - NumBegin, "18446744073709551616");
  {
    std::ofstream Out(Entries[0], std::ios::binary | std::ios::trunc);
    Out << cache::wrapDurableEntry(Payload);
  }

  server::Server S(baseConfig(D));
  ASSERT_TRUE(S.start(Err)) << Err;
  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(T, TR, Err)) << Err; // pre-fix: daemon terminated
  ASSERT_TRUE(TR.Ok) << TR.Done.Error;
  EXPECT_EQ(TR.Done.Source, "fresh"); // the poisoned entry never served
  EXPECT_EQ(TR.EntryText, FreshText); // re-execution is bit-identical
  EXPECT_TRUE(C.ping(Err)) << Err;    // and the daemon is still alive

  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Execution: warm hits, bit-identical results, case studies over the wire.
//===----------------------------------------------------------------------===//

TEST(ServerTest, FreshThenWarmBitIdenticalAndMatchesDirectDriver) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;

  server::TraceRequest T = addImm(0x123);
  server::Client::TraceResult First, Second;
  ASSERT_TRUE(C.runTrace(T, First, Err)) << Err;
  ASSERT_TRUE(First.Ok) << First.Done.Error;
  EXPECT_EQ(First.Done.Source, "fresh");
  ASSERT_FALSE(First.EntryText.empty());

  ASSERT_TRUE(C.runTrace(T, Second, Err)) << Err;
  ASSERT_TRUE(Second.Ok) << Second.Done.Error;
  EXPECT_EQ(Second.Done.Source, "warm");
  EXPECT_EQ(Second.EntryText, First.EntryText);

  EXPECT_EQ(S.stats().Executed, 1u);
  EXPECT_GE(S.stats().WarmHits, 1u);
  S.requestShutdown();
  S.wait();

  // The streamed artifact must be byte-identical to what a direct (no
  // server) BatchDriver run of the same request serializes — the wire adds
  // framing, never content.
  isla::Assumptions Assume;
  isla::ExecOptions EO;
  EO.CacheRegReads = true;
  EO.SinksOnly = true;
  EO.MaxPaths = 64;
  cache::TraceJob TJ;
  TJ.Model = &models::aarch64Model();
  TJ.ArchName = "aarch64";
  TJ.Op = isla::OpcodeSpec{BitVec(32, T.Opcode), BitVec(32, 0)};
  TJ.Assume = &Assume;
  TJ.Opts = EO;
  cache::TraceCache Local; // in-memory, throwaway
  cache::BatchDriver BD(1);
  auto R = BD.run({TJ}, &Local);
  ASSERT_TRUE(R.front().Ok) << R.front().Error;
  EXPECT_EQ(cache::TraceCache::serializeEntry(R.front().Key, R.front().Entry),
            First.EntryText);
}

TEST(ServerTest, CaseStudyStreamsRowsOverTheWire) {
  TempDir D;
  server::Server S(baseConfig(D));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;

  unsigned Streamed = 0;
  server::Client::StudyResult R;
  ASSERT_TRUE(C.runStudy("rbit", R, Err,
                         [&](const frontend::CaseResult &) { ++Streamed; }))
      << Err;
  ASSERT_TRUE(R.Ok) << R.Done.Error;
  EXPECT_EQ(R.Done.Status, 0u);
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(Streamed, 1u);
  EXPECT_EQ(R.Rows[0].Name, "rbit");
  EXPECT_TRUE(R.Rows[0].Ok) << R.Rows[0].Error;

  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Scheduling: dedup, fairness, admission control, drain.
//===----------------------------------------------------------------------===//

TEST(ServerTest, TwoClientsSameRequestOneExecutionBitIdentical) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  // One worker + a deliberate execution delay: client B's identical
  // request provably arrives while A's is still in flight.
  Cfg.ExecDelaySeconds = 0.4;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::TraceRequest T = addImm(0x456);
  server::Client::TraceResult RA, RB;
  std::string ErrA;
  bool SentA = false;
  std::thread A([&] {
    server::Client CA;
    SentA = CA.connect(S.socketPath(), ErrA) && CA.runTrace(T, RA, ErrA);
  });
  // Give A time to be admitted and picked up by the (sole) worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server::Client CB;
  ASSERT_TRUE(CB.connect(S.socketPath(), Err)) << Err;
  ASSERT_TRUE(CB.runTrace(T, RB, Err)) << Err;
  A.join();
  ASSERT_TRUE(SentA) << ErrA;

  ASSERT_TRUE(RA.Ok) << RA.Done.Error;
  ASSERT_TRUE(RB.Ok) << RB.Done.Error;
  ASSERT_FALSE(RA.EntryText.empty());
  EXPECT_EQ(RA.EntryText, RB.EntryText);
  EXPECT_EQ(RA.Done.Source, "fresh");
  EXPECT_EQ(RB.Done.Source, "dedup");

  server::ServerStats St = S.stats();
  EXPECT_EQ(St.Executed, 1u) << "dedup must not re-execute";
  EXPECT_EQ(St.DedupFanout, 1u);
  EXPECT_EQ(St.TraceRequests, 2u);

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, FloodingClientCannotStarveAnother) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.ExecDelaySeconds = 0.05;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  constexpr unsigned Flood = 12;
  Clock::time_point FlooderLastDone{};
  std::string FloodErr;
  bool FloodOk = false;
  std::thread Flooder([&] {
    server::Client C;
    if (!C.connect(S.socketPath(), FloodErr))
      return;
    for (unsigned I = 0; I < Flood; ++I)
      if (!C.send({server::FrameType::Request,
                   server::encodeRequest(traceRequest(I + 1, 0x500 + I))},
                  FloodErr))
        return;
    unsigned Dones = 0;
    server::Frame F;
    while (Dones < Flood && C.recv(F, FloodErr))
      if (F.Type == server::FrameType::Done)
        ++Dones;
    FlooderLastDone = Clock::now();
    FloodOk = Dones == Flood;
  });

  // Let the flood fill the queue, then submit one request from a second
  // client; round-robin must serve it long before the flood drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server::Client Victim;
  ASSERT_TRUE(Victim.connect(S.socketPath(), Err)) << Err;
  server::Client::TraceResult R;
  ASSERT_TRUE(Victim.runTrace(addImm(0x700), R, Err)) << Err;
  Clock::time_point VictimDone = Clock::now();
  ASSERT_TRUE(R.Ok) << R.Done.Error;

  Flooder.join();
  ASSERT_TRUE(FloodOk) << FloodErr;
  EXPECT_LT(VictimDone.time_since_epoch().count(),
            FlooderLastDone.time_since_epoch().count())
      << "victim finished after the whole flood: starved";

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, AdmissionControlRejectsPastQueueBound) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.MaxQueueDepth = 1;
  Cfg.ExecDelaySeconds = 0.3;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  constexpr unsigned Sent = 6;
  for (unsigned I = 0; I < Sent; ++I)
    ASSERT_TRUE(C.send({server::FrameType::Request,
                        server::encodeRequest(traceRequest(I + 1, 0x600 + I))},
                       Err))
        << Err;

  std::set<uint64_t> Accepted, Rejected, Done;
  server::Frame F;
  while (Accepted.size() + Rejected.size() < Sent ||
         Done.size() < Accepted.size()) {
    ASSERT_TRUE(C.recv(F, Err)) << Err;
    uint64_t Id = 0;
    std::string Body;
    if (F.Type == server::FrameType::Accepted) {
      ASSERT_TRUE(server::decodeIdPayload(F.Payload, Id, Body));
      Accepted.insert(Id);
    } else if (F.Type == server::FrameType::Rejected) {
      ASSERT_TRUE(server::decodeIdPayload(F.Payload, Id, Body));
      EXPECT_NE(Body.find("queue full"), std::string::npos) << Body;
      Rejected.insert(Id);
    } else if (F.Type == server::FrameType::Done) {
      server::DoneInfo DI;
      ASSERT_TRUE(server::decodeDone(F.Payload, DI));
      Done.insert(DI.Id);
    }
  }
  EXPECT_EQ(Accepted.size() + Rejected.size(), size_t(Sent));
  EXPECT_GE(Rejected.size(), 1u) << "queue bound never enforced";
  EXPECT_GE(Accepted.size(), 1u);
  EXPECT_EQ(Done, Accepted) << "every accepted id gets exactly its done";
  EXPECT_EQ(S.stats().Rejected, uint64_t(Rejected.size()));

  S.requestShutdown();
  S.wait();
}

TEST(ServerTest, DrainDeliversEveryAcceptedDoneThenMarksClean) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.ExecDelaySeconds = 0.1;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(S.socketPath(), Err)) << Err;
  constexpr unsigned Sent = 5;
  for (unsigned I = 0; I < Sent; ++I)
    ASSERT_TRUE(C.send({server::FrameType::Request,
                        server::encodeRequest(traceRequest(I + 1, 0x800 + I))},
                       Err))
        << Err;
  // Shutdown lands while the requests are queued: the drain must still
  // complete every one of them before the goodbye.
  ASSERT_TRUE(C.send({server::FrameType::Shutdown, ""}, Err)) << Err;
  // The goodbye and socket teardown happen inside wait() — run it
  // concurrently, the way the daemon's main thread does.
  std::thread Drainer([&] { S.wait(); });

  std::set<uint64_t> Accepted, Done;
  bool SawBye = false;
  server::Frame F;
  while (C.recv(F, Err)) {
    uint64_t Id = 0;
    std::string Body;
    if (F.Type == server::FrameType::Accepted) {
      ASSERT_TRUE(server::decodeIdPayload(F.Payload, Id, Body));
      if (Id != 0) // id 0 is the shutdown ack
        Accepted.insert(Id);
    } else if (F.Type == server::FrameType::Done) {
      server::DoneInfo DI;
      ASSERT_TRUE(server::decodeDone(F.Payload, DI));
      Done.insert(DI.Id);
    } else if (F.Type == server::FrameType::Bye) {
      SawBye = true;
    }
  }
  EXPECT_EQ(Accepted.size(), size_t(Sent));
  EXPECT_EQ(Done, Accepted)
      << "drain dropped an accepted request's done frame";
  EXPECT_TRUE(SawBye);

  Drainer.join();
  // A clean drain attests both stores, so the next open can skip its scrub.
  EXPECT_TRUE(cache::hasCleanShutdownMarker(Cfg.CacheDir));
  EXPECT_TRUE(cache::hasCleanShutdownMarker(Cfg.CacheDir + "/sidecond"));
}
