//===- tests/sat_test.cpp - CDCL SAT solver tests ---------------------------===//

#include "smt/Sat.h"

#include <gtest/gtest.h>

#include <random>

using namespace islaris::smt::sat;

namespace {

TEST(SatTest, TrivialSat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(Lit(A, false)));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SatTest, TrivialUnsat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(Lit(A, false)));
  EXPECT_FALSE(S.addClause(Lit(A, true)));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, EmptyClauseUnsat) {
  Solver S;
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, TautologyIsDropped) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(Lit(A, false), Lit(A, true)));
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatTest, ChainPropagation) {
  // (a) (~a | b) (~b | c) ... forces a long implication chain.
  Solver S;
  const int N = 50;
  std::vector<Var> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(S.newVar());
  S.addClause(Lit(Vars[0], false));
  for (int I = 0; I + 1 < N; ++I)
    S.addClause(Lit(Vars[I], true), Lit(Vars[I + 1], false));
  ASSERT_EQ(S.solve(), SatResult::Sat);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(S.modelValue(Vars[I]));
}

TEST(SatTest, PigeonHole3Into2) {
  // PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT requiring learning.
  Solver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P)
    S.addClause(Lit(Row[0], false), Lit(Row[1], false));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, PigeonHole6Into5) {
  Solver S;
  const int NP = 6, NH = 5;
  std::vector<std::vector<Var>> P(NP, std::vector<Var>(NH));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> C;
    for (Var V : Row)
      C.push_back(Lit(V, false));
    S.addClause(C);
  }
  for (int H = 0; H < NH; ++H)
    for (int I = 0; I < NP; ++I)
      for (int J = I + 1; J < NP; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.numConflicts(), 0u);
}

TEST(SatTest, AssumptionsSelectBranch) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, false), Lit(B, false)); // a | b
  EXPECT_EQ(S.solve({Lit(A, true)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_EQ(S.solve({Lit(A, true), Lit(B, true)}), SatResult::Unsat);
  // The solver must remain usable after an assumption-UNSAT answer.
  EXPECT_EQ(S.solve({Lit(A, false)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SatTest, XorChainSatAndUnsat) {
  // Tseitin-encode x1 ^ x2 ^ ... ^ xn = 1 with pairwise encodings; check
  // both a satisfiable and a contradicting variant.
  Solver S;
  const int N = 12;
  std::vector<Var> X;
  for (int I = 0; I < N; ++I)
    X.push_back(S.newVar());
  // r_i = r_{i-1} xor x_i
  Var Prev = X[0];
  for (int I = 1; I < N; ++I) {
    Var R = S.newVar();
    Lit A(Prev, false), B(X[size_t(I)], false), C(R, false);
    S.addClause(~C, A, B);
    S.addClause(~C, ~A, ~B);
    S.addClause(C, ~A, B);
    S.addClause(C, A, ~B);
    Prev = R;
  }
  S.addClause(Lit(Prev, false));
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // Parity of the model must be odd.
  int Ones = 0;
  for (Var V : X)
    Ones += S.modelValue(V);
  EXPECT_EQ(Ones % 2, 1);
}

class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  // Random 3-CNF over <=10 variables, checked against exhaustive search.
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 30; ++Round) {
    int NumVars = 4 + int(Rng() % 7);
    int NumClauses = 5 + int(Rng() % 40);
    std::vector<std::vector<int>> Cnf; // +/- (v+1) encoding
    for (int C = 0; C < NumClauses; ++C) {
      std::vector<int> Clause;
      for (int K = 0; K < 3; ++K) {
        int V = int(Rng() % unsigned(NumVars)) + 1;
        Clause.push_back(Rng() % 2 ? V : -V);
      }
      Cnf.push_back(Clause);
    }
    // Brute force.
    bool BruteSat = false;
    for (uint32_t M = 0; M < (1u << NumVars) && !BruteSat; ++M) {
      bool All = true;
      for (const auto &Clause : Cnf) {
        bool Any = false;
        for (int L : Clause) {
          bool V = (M >> (std::abs(L) - 1)) & 1;
          if ((L > 0) == V)
            Any = true;
        }
        if (!Any) {
          All = false;
          break;
        }
      }
      BruteSat = All;
    }
    // CDCL.
    Solver S;
    std::vector<Var> Vars;
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(S.newVar());
    bool Ok = true;
    for (const auto &Clause : Cnf) {
      std::vector<Lit> Lits;
      for (int L : Clause)
        Lits.push_back(Lit(Vars[size_t(std::abs(L) - 1)], L < 0));
      Ok = S.addClause(Lits) && Ok;
    }
    SatResult R = Ok ? S.solve() : SatResult::Unsat;
    EXPECT_EQ(R == SatResult::Sat, BruteSat) << "seed round " << Round;
    // If SAT, the model must actually satisfy the CNF.
    if (R == SatResult::Sat) {
      for (const auto &Clause : Cnf) {
        bool Any = false;
        for (int L : Clause)
          if ((L > 0) == S.modelValue(Vars[size_t(std::abs(L) - 1)]))
            Any = true;
        EXPECT_TRUE(Any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
