//===- tests/adequacy_test.cpp - Theorem 1, empirically -------------------------===//
//
// The adequacy theorem (§4.2) says a successful verification implies: from
// any initial state satisfying the precondition, the ITL operational
// semantics never reaches BOTTOM and the visible labels satisfy spec(s).
// We cannot prove the meta-theorem; instead these property tests replay
// verified programs from many randomized precondition-satisfying states
// and check exactly that statement (and the functional postconditions).
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "frontend/Verifier.h"
#include "itl/OpSem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace islaris;
using islaris::itl::MachineState;
using islaris::itl::Reg;
using smt::Value;

namespace {

class AdequacyTest : public ::testing::TestWithParam<int> {};

TEST_P(AdequacyTest, ArmMemcpyCopiesAndNeverFails) {
  // Assemble the verified memcpy image (same bytes as the case study).
  namespace e = arch::aarch64::enc;
  arch::aarch64::Asm A;
  A.org(0x400000);
  A.cbz(2, "L1");
  A.put(e::movz(3, 0));
  A.label("L3");
  A.put(e::ldrReg(0, 4, 1, 3));
  A.put(e::strReg(0, 4, 0, 3));
  A.put(e::addImm(3, 3, 1));
  A.put(e::cmpReg(2, 3));
  A.bcond(arch::aarch64::Cond::NE, "L3");
  A.label("L1");
  A.put(e::ret());

  frontend::Verifier V(frontend::aarch64());
  V.addCode(A.finish());
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;

  std::mt19937_64 Rng(unsigned(GetParam()) * 7919 + 3);
  for (int Round = 0; Round < 8; ++Round) {
    unsigned N = unsigned(Rng() % 6);
    uint64_t S0 = 0x5000 + (Rng() % 64);
    uint64_t D0 = S0 + 0x100 + (Rng() % 64);
    uint64_t Ret = 0x600000; // outside the instruction map -> E(a)

    MachineState S;
    S.PcReg = "_PC";
    for (int I = 0; I <= 30; ++I)
      S.setReg(arch::aarch64::xreg(unsigned(I)), Value(BitVec(64, Rng())));
    for (const char *F : {"N", "Z", "C", "V"})
      S.setReg(Reg("PSTATE", F), Value(BitVec(1, Rng() % 2)));
    S.setReg(arch::aarch64::xreg(0), Value(BitVec(64, D0)));
    S.setReg(arch::aarch64::xreg(1), Value(BitVec(64, S0)));
    S.setReg(arch::aarch64::xreg(2), Value(BitVec(64, N)));
    S.setReg(arch::aarch64::xreg(30), Value(BitVec(64, Ret)));
    S.setReg(Reg("_PC"), Value(BitVec(64, 0x400000)));
    std::vector<uint8_t> Src(N);
    for (unsigned K = 0; K < N; ++K) {
      Src[K] = uint8_t(Rng());
      S.Mem[S0 + K] = Src[K];
      S.Mem[D0 + K] = uint8_t(Rng());
    }
    S.Instrs = V.instrMap();

    itl::Interpreter Interp(V.builder());
    auto Paths = Interp.runProgram(S, 256);
    int Completed = 0;
    for (const auto &P : Paths) {
      ASSERT_NE(P.Out, itl::Outcome::Bottom) << P.Reason;
      ASSERT_NE(P.Out, itl::Outcome::Stuck) << P.Reason;
      if (P.Out != itl::Outcome::Top || P.Labels.empty())
        continue;
      // The completed path terminates with E(ret address).
      if (P.Labels.back().K != itl::Label::Kind::End)
        continue;
      EXPECT_EQ(P.Labels.back().Addr.toUInt64(), Ret);
      for (unsigned K = 0; K < N; ++K)
        EXPECT_EQ(P.Final.Mem.at(D0 + K), Src[K]) << "byte " << K;
      ++Completed;
    }
    EXPECT_EQ(Completed, 1) << "exactly one execution completes";
  }
}

TEST_P(AdequacyTest, RvMemcpyCopiesAndNeverFails) {
  namespace e = arch::rv64::enc;
  using namespace arch::rv64;
  Asm A;
  A.org(0x400000);
  A.beqz(A2, "L2");
  A.label("L1");
  A.put(e::lb(A3, A1, 0));
  A.put(e::sb(A3, A0, 0));
  A.put(e::addi(A2, A2, -1));
  A.put(e::addi(A0, A0, 1));
  A.put(e::addi(A1, A1, 1));
  A.bnez(A2, "L1");
  A.label("L2");
  A.put(e::ret());

  frontend::Verifier V(frontend::rv64());
  V.addCode(A.finish());
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;

  std::mt19937_64 Rng(unsigned(GetParam()) * 104729 + 5);
  for (int Round = 0; Round < 8; ++Round) {
    unsigned N = unsigned(Rng() % 6);
    uint64_t S0 = 0x7000 + (Rng() % 64);
    uint64_t D0 = S0 + 0x100 + (Rng() % 64);
    uint64_t Ret = 0x600000;

    MachineState S;
    S.PcReg = "PC";
    for (unsigned I = 1; I <= 31; ++I)
      S.setReg(xreg(I), Value(BitVec(64, Rng())));
    S.setReg(xreg(A0), Value(BitVec(64, D0)));
    S.setReg(xreg(A1), Value(BitVec(64, S0)));
    S.setReg(xreg(A2), Value(BitVec(64, N)));
    S.setReg(xreg(RA), Value(BitVec(64, Ret)));
    S.setReg(Reg("PC"), Value(BitVec(64, 0x400000)));
    std::vector<uint8_t> Src(N);
    for (unsigned K = 0; K < N; ++K) {
      Src[K] = uint8_t(Rng());
      S.Mem[S0 + K] = Src[K];
      S.Mem[D0 + K] = uint8_t(Rng());
    }
    S.Instrs = V.instrMap();

    itl::Interpreter Interp(V.builder());
    auto Paths = Interp.runProgram(S, 256);
    int Completed = 0;
    for (const auto &P : Paths) {
      ASSERT_NE(P.Out, itl::Outcome::Bottom) << P.Reason;
      ASSERT_NE(P.Out, itl::Outcome::Stuck) << P.Reason;
      if (P.Out != itl::Outcome::Top || P.Labels.empty() ||
          P.Labels.back().K != itl::Label::Kind::End)
        continue;
      for (unsigned K = 0; K < N; ++K)
        EXPECT_EQ(P.Final.Mem.at(D0 + K), Src[K]);
      ++Completed;
    }
    EXPECT_EQ(Completed, 1);
  }
}

TEST_P(AdequacyTest, UnalignedStoreFaultsToHandler) {
  namespace e = arch::aarch64::enc;
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{0x8000, e::strImm(2, 0, 1, 0)}});
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .constrain(Reg("SCTLR_EL1"),
                 [](smt::TermBuilder &TB, const smt::Term *S) {
                   return TB.eqTerm(TB.extract(1, 1, S), TB.constBV(1, 1));
                 });
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;

  std::mt19937_64 Rng(unsigned(GetParam()) * 31337 + 7);
  for (int Round = 0; Round < 8; ++Round) {
    uint64_t Addr = (Rng() & 0xffff) | 1; // misaligned
    uint64_t Vb = 0xc0000;
    MachineState S;
    S.PcReg = "_PC";
    for (int I = 0; I <= 30; ++I)
      S.setReg(arch::aarch64::xreg(unsigned(I)), Value(BitVec(64, Rng())));
    for (const char *F : {"N", "Z", "C", "V", "D", "A", "I", "F"})
      S.setReg(Reg("PSTATE", F), Value(BitVec(1, Rng() % 2)));
    S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b01)));
    S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
    S.setReg(Reg("SCTLR_EL1"), Value(BitVec(64, 2)));
    S.setReg(Reg("VBAR_EL1"), Value(BitVec(64, Vb)));
    for (const char *SR : {"SPSR_EL1", "ELR_EL1", "ESR_EL1", "FAR_EL1"})
      S.setReg(Reg(SR), Value(BitVec(64, 0)));
    S.setReg(arch::aarch64::xreg(1), Value(BitVec(64, Addr)));
    S.setReg(Reg("_PC"), Value(BitVec(64, 0x8000)));
    S.Instrs = V.instrMap();

    itl::Interpreter Interp(V.builder());
    auto Paths = Interp.runProgram(S, 8);
    int Faulted = 0;
    for (const auto &P : Paths) {
      ASSERT_NE(P.Out, itl::Outcome::Bottom) << P.Reason;
      if (P.Out != itl::Outcome::Top || P.Labels.empty() ||
          P.Labels.back().K != itl::Label::Kind::End)
        continue;
      // Vectored to VBAR + 0x200 with the right syndrome and fault addr.
      EXPECT_EQ(P.Labels.back().Addr.toUInt64(), Vb + 0x200);
      EXPECT_EQ(P.Final.getReg(Reg("FAR_EL1"))->asBitVec().toUInt64(),
                Addr);
      EXPECT_EQ(P.Final.getReg(Reg("ESR_EL1"))->asBitVec().toUInt64(),
                0x96000021ull);
      EXPECT_EQ(P.Final.getReg(Reg("ELR_EL1"))->asBitVec().toUInt64(),
                0x8000u);
      ++Faulted;
    }
    EXPECT_EQ(Faulted, 1);
  }
}

TEST_P(AdequacyTest, ArmBinarySearchWithRealComparator) {
  // The binary-search case study assumed a calling-convention contract for
  // the comparator; here we link real machine code implementing the
  // three-way comparison ((a >s b) - (a <s b)) and execute the whole thing
  // under the ITL semantics: the returned index must be the lower bound.
  namespace e = arch::aarch64::enc;
  using arch::aarch64::Cond;
  arch::aarch64::Asm A;
  A.org(0x40000);
  A.label("bsearch");
  A.put(e::movReg(9, 30));
  A.put(e::movReg(8, 0));
  A.put(e::movReg(10, 1));
  A.put(e::movz(4, 0));
  A.put(e::movReg(5, 2));
  A.label("loop");
  A.put(e::cmpReg(4, 5));
  A.bcond(Cond::EQ, "done");
  A.put(e::addReg(6, 4, 5));
  A.put(e::lsrImm(6, 6, 1));
  A.put(e::lslImm(7, 6, 3));
  A.put(e::ldrReg(3, 7, 10, 7));
  A.put(e::movReg(0, 8));
  A.put(e::movReg(1, 7));
  A.put(e::blr(3));
  A.put(e::cmpImm(0, 0));
  A.bcond(Cond::GT, "gt");
  A.put(e::movReg(5, 6));
  A.b("loop");
  A.label("gt");
  A.put(e::addImm(4, 6, 1));
  A.b("loop");
  A.label("done");
  A.put(e::movReg(0, 4));
  A.put(e::br(9));
  // The comparator: x0 = (x0 >s x1) - (x0 <s x1).
  // The comparator honors the verified contract: it may change only
  // x0, x1 and the flags.
  A.org(0x50000);
  A.label("cmp3");
  A.put(e::cmpReg(0, 1));
  A.put(e::cset(0, Cond::GT));
  A.put(e::cset(1, Cond::LT));
  A.put(e::subReg(0, 0, 1));
  A.put(e::ret());

  frontend::Verifier V(frontend::aarch64());
  V.addCode(A.finish());
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;

  std::mt19937_64 Rng(unsigned(GetParam()) * 2750161 + 9);
  for (int Round = 0; Round < 6; ++Round) {
    const unsigned N = 4;
    uint64_t Base = 0x9000 + (Rng() % 64) * 8;
    uint64_t Ret = 0x600000;
    std::vector<int64_t> Elems(N);
    for (auto &E2 : Elems)
      E2 = int64_t(Rng() % 64) - 32;
    std::sort(Elems.begin(), Elems.end());
    int64_t Key = int64_t(Rng() % 64) - 32;
    unsigned Expected = 0;
    while (Expected < N && Elems[Expected] < Key)
      ++Expected;

    MachineState S;
    S.PcReg = "_PC";
    for (int I = 0; I <= 30; ++I)
      S.setReg(arch::aarch64::xreg(unsigned(I)), Value(BitVec(64, Rng())));
    for (const char *F : {"N", "Z", "C", "V"})
      S.setReg(Reg("PSTATE", F), Value(BitVec(1, Rng() % 2)));
    S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b01)));
    S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
    S.setReg(Reg("SCTLR_EL1"), Value(BitVec(64, 0)));
    S.setReg(arch::aarch64::xreg(0), Value(BitVec(64, uint64_t(Key))));
    S.setReg(arch::aarch64::xreg(1), Value(BitVec(64, Base)));
    S.setReg(arch::aarch64::xreg(2), Value(BitVec(64, N)));
    S.setReg(arch::aarch64::xreg(3), Value(BitVec(64, 0x50000)));
    S.setReg(arch::aarch64::xreg(30), Value(BitVec(64, Ret)));
    S.setReg(Reg("_PC"), Value(BitVec(64, 0x40000)));
    for (unsigned K = 0; K < N; ++K) {
      BitVec W(64, uint64_t(Elems[K]));
      auto Bytes = W.toBytes();
      for (unsigned B = 0; B < 8; ++B)
        S.Mem[Base + K * 8 + B] = Bytes[B];
    }
    S.Instrs = V.instrMap();

    itl::Interpreter Interp(V.builder());
    auto Paths = Interp.runProgram(S, 512);
    int Completed = 0;
    for (const auto &P : Paths) {
      ASSERT_NE(P.Out, itl::Outcome::Bottom) << P.Reason;
      ASSERT_NE(P.Out, itl::Outcome::Stuck) << P.Reason;
      if (P.Out != itl::Outcome::Top || P.Labels.empty() ||
          P.Labels.back().K != itl::Label::Kind::End)
        continue;
      EXPECT_EQ(P.Final.getReg(arch::aarch64::xreg(0))->asBitVec()
                    .toUInt64(),
                Expected)
          << "key " << Key << " in sorted array";
      ++Completed;
    }
    EXPECT_EQ(Completed, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdequacyTest, ::testing::Values(1, 2, 3));

} // namespace
