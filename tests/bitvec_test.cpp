//===- tests/bitvec_test.cpp - BitVec unit & property tests ---------------===//

#include "support/BitVec.h"

#include <gtest/gtest.h>

#include <random>

using islaris::BitVec;

namespace {

TEST(BitVecTest, ConstructAndRead) {
  BitVec V(64, 0x40);
  EXPECT_EQ(V.width(), 64u);
  EXPECT_EQ(V.toUInt64(), 0x40u);
  EXPECT_FALSE(V.isZero());
  EXPECT_TRUE(BitVec::zeros(17).isZero());
  EXPECT_TRUE(BitVec::ones(17).isAllOnes());
}

TEST(BitVecTest, TruncationOnConstruct) {
  BitVec V(4, 0xff);
  EXPECT_EQ(V.toUInt64(), 0xfu);
  BitVec W(1, 2);
  EXPECT_TRUE(W.isZero());
}

TEST(BitVecTest, FromStringHex) {
  BitVec V;
  ASSERT_TRUE(BitVec::fromString("#x0000000000000040", V));
  EXPECT_EQ(V.width(), 64u);
  EXPECT_EQ(V.toUInt64(), 0x40u);
  ASSERT_TRUE(BitVec::fromString("0xdeadbeef", V));
  EXPECT_EQ(V.width(), 32u);
  EXPECT_EQ(V.toUInt64(), 0xdeadbeefu);
}

TEST(BitVecTest, FromStringBinary) {
  BitVec V;
  ASSERT_TRUE(BitVec::fromString("#b10", V));
  EXPECT_EQ(V.width(), 2u);
  EXPECT_EQ(V.toUInt64(), 2u);
  ASSERT_TRUE(BitVec::fromString("0b1", V));
  EXPECT_EQ(V.width(), 1u);
  EXPECT_EQ(V.toUInt64(), 1u);
}

TEST(BitVecTest, FromStringRejectsGarbage) {
  BitVec V;
  EXPECT_FALSE(BitVec::fromString("", V));
  EXPECT_FALSE(BitVec::fromString("#x", V));
  EXPECT_FALSE(BitVec::fromString("#xzz", V));
  EXPECT_FALSE(BitVec::fromString("#b102", V));
  EXPECT_FALSE(BitVec::fromString("42", V));
}

TEST(BitVecTest, ToStringRoundTrip) {
  BitVec V(64, 0x910103ff);
  EXPECT_EQ(V.toString(), "#x00000000910103ff");
  BitVec W(2, 2);
  EXPECT_EQ(W.toString(), "#b10");
  BitVec Parsed;
  ASSERT_TRUE(BitVec::fromString(V.toString(), Parsed));
  EXPECT_EQ(Parsed, V);
}

TEST(BitVecTest, WideHexParse) {
  // 33 hex digits -> 132 bits, straddling word boundaries.
  BitVec V;
  ASSERT_TRUE(BitVec::fromString(
      "#x123456789abcdef0fedcba9876543210f", V));
  EXPECT_EQ(V.width(), 132u);
  EXPECT_EQ(V.extract(3, 0).toUInt64(), 0xfu);
  EXPECT_EQ(V.extract(131, 128).toUInt64(), 0x1u);
  EXPECT_EQ(V.toString(), "#x123456789abcdef0fedcba9876543210f");
}

TEST(BitVecTest, AddWithCarryChain) {
  BitVec A = BitVec::ones(128);
  BitVec B(128, 1);
  EXPECT_TRUE(A.add(B).isZero());
  // The Fig. 3 pattern: zero_extend 64 then add in 128 bits, extract low 64.
  BitVec SP(64, 0xfffffffffffffff0ull);
  BitVec Wide = SP.zext(64).add(BitVec(128, 0x40));
  EXPECT_EQ(Wide.extract(63, 0).toUInt64(), 0x30u);
  EXPECT_EQ(Wide.extract(127, 64).toUInt64(), 1u);
}

TEST(BitVecTest, SubNeg) {
  BitVec A(64, 5), B(64, 7);
  EXPECT_EQ(A.sub(B).toInt64(), -2);
  EXPECT_EQ(B.neg().add(B).toUInt64(), 0u);
}

TEST(BitVecTest, MulWide) {
  BitVec A(128, 0xffffffffffffffffull);
  BitVec R = A.mul(A);
  // (2^64-1)^2 = 2^128 - 2^65 + 1.
  EXPECT_EQ(R.extract(63, 0).toUInt64(), 1u);
  EXPECT_EQ(R.extract(127, 64).toUInt64(), 0xfffffffffffffffeull);
}

TEST(BitVecTest, DivRemConventions) {
  BitVec A(8, 17), Z(8, 0);
  EXPECT_TRUE(A.udiv(Z).isAllOnes());
  EXPECT_EQ(A.urem(Z), A);
  EXPECT_EQ(A.udiv(BitVec(8, 5)).toUInt64(), 3u);
  EXPECT_EQ(A.urem(BitVec(8, 5)).toUInt64(), 2u);
  // Signed: -7 / 2 == -3 (truncating), -7 % 2 == -1.
  BitVec M7(8, uint64_t(-7) & 0xff);
  EXPECT_EQ(M7.sdiv(BitVec(8, 2)).toInt64(), -3);
  EXPECT_EQ(M7.srem(BitVec(8, 2)).toInt64(), -1);
}

TEST(BitVecTest, Shifts) {
  BitVec V(16, 0x8001);
  EXPECT_EQ(V.shl(1).toUInt64(), 0x0002u);
  EXPECT_EQ(V.lshr(1).toUInt64(), 0x4000u);
  EXPECT_EQ(V.ashr(1).toUInt64(), 0xc000u);
  EXPECT_TRUE(V.shl(16).isZero());
  EXPECT_TRUE(V.lshr(99).isZero());
  EXPECT_TRUE(V.ashr(99).isAllOnes());
  // Shift amounts given as (possibly wide) bitvectors saturate.
  EXPECT_TRUE(V.shl(BitVec(128, 1000)).isZero());
  EXPECT_EQ(V.shl(BitVec(16, 4)).toUInt64(), 0x0010u);
}

TEST(BitVecTest, ExtractConcat) {
  BitVec V(32, 0xdeadbeef);
  EXPECT_EQ(V.extract(31, 16).toUInt64(), 0xdeadu);
  EXPECT_EQ(V.extract(15, 0).toUInt64(), 0xbeefu);
  EXPECT_EQ(V.extract(0, 0).width(), 1u);
  BitVec Hi(16, 0xdead), Lo(16, 0xbeef);
  EXPECT_EQ(Hi.concat(Lo), V);
}

TEST(BitVecTest, Extensions) {
  BitVec V(8, 0x80);
  EXPECT_EQ(V.zext(8).toUInt64(), 0x80u);
  EXPECT_EQ(V.sext(8).toUInt64(), 0xff80u);
  EXPECT_EQ(V.zextTo(4).toUInt64(), 0u);
  EXPECT_EQ(BitVec(8, 0x7f).sext(8).toUInt64(), 0x7fu);
}

TEST(BitVecTest, InsertSlice) {
  BitVec V(32, 0);
  BitVec R = V.insertSlice(8, BitVec(8, 0xab));
  EXPECT_EQ(R.toUInt64(), 0xab00u);
  R = BitVec::ones(32).insertSlice(8, BitVec(8, 0));
  EXPECT_EQ(R.toUInt64(), 0xffff00ffu);
}

TEST(BitVecTest, ReverseBits) {
  EXPECT_EQ(BitVec(8, 0b10110000).reverseBits().toUInt64(), 0b00001101u);
  EXPECT_EQ(BitVec(32, 1).reverseBits().toUInt64(), 0x80000000u);
}

TEST(BitVecTest, Comparisons) {
  BitVec A(8, 0x80), B(8, 0x01);
  EXPECT_TRUE(B.ult(A));
  EXPECT_TRUE(A.slt(B)); // 0x80 is -128 signed.
  EXPECT_TRUE(A.sle(A));
  EXPECT_TRUE(A.ule(A));
  EXPECT_FALSE(A.ult(A));
}

TEST(BitVecTest, Bytes) {
  BitVec V(32, 0x11223344);
  std::vector<uint8_t> B = V.toBytes();
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B[0], 0x44u); // little-endian
  EXPECT_EQ(B[3], 0x11u);
  EXPECT_EQ(BitVec::fromBytes(B), V);
}

//===----------------------------------------------------------------------===//
// Property tests vs. a 64-bit oracle, swept over widths.
//===----------------------------------------------------------------------===//

class BitVecPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecPropertyTest, ArithmeticMatchesUInt64Oracle) {
  unsigned W = GetParam();
  uint64_t Mask = W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
  std::mt19937_64 Rng(W * 7919);
  for (int Iter = 0; Iter < 200; ++Iter) {
    uint64_t A = Rng() & Mask, B = Rng() & Mask;
    BitVec VA(W, A), VB(W, B);
    EXPECT_EQ(VA.add(VB).toUInt64(), (A + B) & Mask);
    EXPECT_EQ(VA.sub(VB).toUInt64(), (A - B) & Mask);
    EXPECT_EQ(VA.mul(VB).toUInt64(), (A * B) & Mask);
    EXPECT_EQ(VA.bvand(VB).toUInt64(), A & B);
    EXPECT_EQ(VA.bvor(VB).toUInt64(), A | B);
    EXPECT_EQ(VA.bvxor(VB).toUInt64(), A ^ B);
    EXPECT_EQ(VA.bvnot().toUInt64(), ~A & Mask);
    if (B != 0) {
      EXPECT_EQ(VA.udiv(VB).toUInt64(), A / B);
      EXPECT_EQ(VA.urem(VB).toUInt64(), A % B);
    }
    EXPECT_EQ(VA.ult(VB), A < B);
    unsigned Sh = unsigned(Rng() % (W + 1));
    EXPECT_EQ(VA.shl(Sh).toUInt64(), Sh >= W ? 0 : (A << Sh) & Mask);
    EXPECT_EQ(VA.lshr(Sh).toUInt64(), Sh >= W ? 0 : A >> Sh);
  }
}

TEST_P(BitVecPropertyTest, SignedComparisonMatchesInt64Oracle) {
  unsigned W = GetParam();
  uint64_t Mask = W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
  std::mt19937_64 Rng(W * 104729);
  auto signExtend = [&](uint64_t V) -> int64_t {
    if (W < 64 && (V >> (W - 1)) & 1)
      V |= ~Mask;
    return int64_t(V);
  };
  for (int Iter = 0; Iter < 200; ++Iter) {
    uint64_t A = Rng() & Mask, B = Rng() & Mask;
    BitVec VA(W, A), VB(W, B);
    EXPECT_EQ(VA.slt(VB), signExtend(A) < signExtend(B));
    EXPECT_EQ(VA.toInt64(), signExtend(A));
  }
}

TEST_P(BitVecPropertyTest, ExtractConcatInverse) {
  unsigned W = GetParam();
  if (W < 2)
    return;
  std::mt19937_64 Rng(W * 31337);
  uint64_t Mask = W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
  for (int Iter = 0; Iter < 100; ++Iter) {
    uint64_t A = Rng() & Mask;
    BitVec V(W, A);
    unsigned Cut = 1 + unsigned(Rng() % (W - 1));
    BitVec Hi = V.extract(W - 1, Cut), Lo = V.extract(Cut - 1, 0);
    EXPECT_EQ(Hi.concat(Lo), V);
    EXPECT_EQ(V.reverseBits().reverseBits(), V);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecPropertyTest,
                         ::testing::Values(1u, 5u, 8u, 16u, 31u, 32u, 33u,
                                           63u, 64u));

TEST(BitVecWideTest, Wide128Oracle) {
  // Cross-check 128-bit arithmetic against __int128.
  std::mt19937_64 Rng(42);
  for (int Iter = 0; Iter < 200; ++Iter) {
    unsigned __int128 A =
        (unsigned __int128)Rng() << 64 | Rng();
    unsigned __int128 B =
        (unsigned __int128)Rng() << 64 | Rng();
    BitVec VA = BitVec(64, uint64_t(A >> 64)).concat(BitVec(64, uint64_t(A)));
    BitVec VB = BitVec(64, uint64_t(B >> 64)).concat(BitVec(64, uint64_t(B)));
    auto check = [](const BitVec &V, unsigned __int128 X) {
      EXPECT_EQ(V.extract(63, 0).toUInt64(), uint64_t(X));
      EXPECT_EQ(V.extract(127, 64).toUInt64(), uint64_t(X >> 64));
    };
    check(VA.add(VB), A + B);
    check(VA.sub(VB), A - B);
    check(VA.mul(VB), A * B);
    if (B != 0) {
      check(VA.udiv(VB), A / B);
      check(VA.urem(VB), A % B);
    }
    EXPECT_EQ(VA.ult(VB), A < B);
  }
}

} // namespace
