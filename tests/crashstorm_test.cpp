//===- tests/crashstorm_test.cpp - Kill/resume crash-storm harness --------------===//
//
// The durability acceptance test: a nine-study suite run is killed hard
// (std::_Exit inside a store publish or a journal append, via the seeded
// crash-* fault sites) at several distinct abort points, restarted with the
// same options each time, and must converge — the final resumed run skips
// journaled work (JobsResumed > 0) and reproduces results bit-identical to
// a clean run, and a scrub of the surviving stores finds no corruption.
//
// The binary is its own child: when ISLARIS_CRASHSTORM_CHILD is set it runs
// one journaled suite pass instead of gtest (hence the custom main() below,
// linked against gtest but not gtest_main).  The parent fork/execs
// /proc/self/exe with ISLARIS_FAULTS="crash-publish=at:K" /
// "crash-journal=at:K" picking one abort point per run.
//
//===----------------------------------------------------------------------===//

#include "cache/Scrub.h"
#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"
#include "frontend/CaseStudies.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace islaris;

namespace {

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Child mode: one journaled, persistent, resumable suite pass.
//===----------------------------------------------------------------------===//

/// Runs the suite against the stores under $ISLARIS_CRASHSTORM_DIR and
/// publishes the rows (netstring-framed encodeCaseResult records behind a
/// "resumed <n>" summary line) at <dir>/results.txt.  The fault injector, if
/// any, comes from ISLARIS_FAULTS via the suite harness itself — exactly the
/// path an operator chaos-testing a real run would use.
int crashstormChild() {
  const char *Dir = std::getenv("ISLARIS_CRASHSTORM_DIR");
  if (!Dir || !*Dir)
    return 3;
  std::string Root(Dir);

  cache::TraceCacheConfig TC;
  TC.Persist = true;
  TC.Dir = Root + "/traces";
  cache::TraceCache Cache(TC);
  cache::SideCondConfig SC;
  SC.Persist = true;
  SC.Dir = Root + "/sidecond";
  cache::SideCondStore Store(SC);

  frontend::SuiteOptions O;
  O.Threads = 1; // deterministic probe order: abort points are reproducible
  O.Cache = &Cache;
  O.SideCond = &Store;
  O.JournalPath = Root + "/suite.journal";
  O.Resume = true;
  std::vector<frontend::CaseResult> Rows = frontend::runAllCaseStudies(O);

  std::ostringstream OS;
  OS << "resumed " << frontend::summarize(Rows).JobsResumed << "\n";
  for (const frontend::CaseResult &R : Rows) {
    std::string Enc = frontend::encodeCaseResult(R);
    OS << Enc.size() << ":" << Enc << "\n";
  }
  if (!cache::atomicWriteFile(Root + "/results.txt", OS.str()))
    return 3;
  return frontend::suiteExitCode(Rows);
}

//===----------------------------------------------------------------------===//
// Parent-side plumbing.
//===----------------------------------------------------------------------===//

std::string selfExePath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof Buf - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  return Buf;
}

/// fork/execs this binary in child mode over \p Dir with the given
/// ISLARIS_FAULTS value (null = fault-free).  Returns the child's exit code,
/// or -1 if it died of a signal.
int runChild(const std::string &Exe, const std::string &Dir,
             const char *Faults) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    ::setenv("ISLARIS_CRASHSTORM_CHILD", "1", 1);
    ::setenv("ISLARIS_CRASHSTORM_DIR", Dir.c_str(), 1);
    ::setenv("ISLARIS_NO_FSYNC", "1", 1); // crash, not power cut: keep it fast
    if (Faults)
      ::setenv("ISLARIS_FAULTS", Faults, 1);
    else
      ::unsetenv("ISLARIS_FAULTS");
    ::execl(Exe.c_str(), Exe.c_str(), (char *)nullptr);
    std::_Exit(127);
  }
  int Status = 0;
  if (::waitpid(Pid, &Status, 0) != Pid)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

bool readResults(const std::string &Dir,
                 std::vector<frontend::CaseResult> &Rows,
                 unsigned &Resumed) {
  std::ifstream In(Dir + "/results.txt", std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  if (std::sscanf(Text.c_str(), "resumed %u", &Resumed) != 1)
    return false;
  size_t P = Text.find('\n');
  if (P == std::string::npos)
    return false;
  ++P;
  while (P < Text.size()) {
    size_t Colon = Text.find(':', P);
    if (Colon == std::string::npos)
      return false;
    size_t Len =
        std::strtoull(Text.substr(P, Colon - P).c_str(), nullptr, 10);
    if (Colon + 1 + Len > Text.size())
      return false;
    frontend::CaseResult R;
    if (!frontend::decodeCaseResult(Text.substr(Colon + 1, Len), R))
      return false;
    Rows.push_back(std::move(R));
    P = Colon + 1 + Len;
    if (P < Text.size() && Text[P] == '\n')
      ++P;
  }
  return true;
}

struct TempDir {
  fs::path Path;
  TempDir() {
    Path = fs::temp_directory_path() /
           ("islaris-crashstorm-" + std::to_string(::getpid()));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
};

//===----------------------------------------------------------------------===//
// The storm.
//===----------------------------------------------------------------------===//

TEST(CrashStormTest, KilledRunsResumeToBitIdenticalResults) {
  std::string Exe = selfExePath();
  ASSERT_FALSE(Exe.empty());
  TempDir Tmp;
  std::string CleanDir = (Tmp.Path / "clean").string();
  std::string StormDir = (Tmp.Path / "storm").string();

  // 1. Fault-free baseline child: cold caches, fresh journal.
  ASSERT_EQ(runChild(Exe, CleanDir, nullptr), 0);
  std::vector<frontend::CaseResult> Baseline;
  unsigned CleanResumed = ~0u;
  ASSERT_TRUE(readResults(CleanDir, Baseline, CleanResumed));
  ASSERT_EQ(Baseline.size(), 9u);
  EXPECT_EQ(CleanResumed, 0u);
  for (const frontend::CaseResult &R : Baseline)
    EXPECT_TRUE(R.Ok) << R.Name << ": " << R.Error;

  // 2. The storm: the same resumable run is started over and over, each time
  // aborted hard at a different seeded point inside a store publish (before
  // the rename / between rename and directory sync) or a journal append
  // (before any byte / mid-record / after the sync).  A later abort index
  // that is never reached — because the journal already carries the work —
  // exits clean, which is itself the convergence we are proving.
  struct Kill {
    const char *Faults;
  };
  const Kill Schedule[] = {
      {"crash-journal=at:0"},  {"crash-publish=at:2"},
      {"crash-publish=at:8"},  {"crash-journal=at:1"},
      {"crash-publish=at:15"}, {"crash-publish=at:25"},
      {"crash-journal=at:2"},  {"crash-publish=at:40"},
  };
  unsigned Kills = 0;
  for (const Kill &K : Schedule) {
    int Exit = runChild(Exe, StormDir, K.Faults);
    ASSERT_TRUE(Exit == 42 || Exit == 0)
        << K.Faults << " exited " << Exit
        << " (42 = killed at the abort point, 0 = point not reached)";
    if (Exit == 42)
      ++Kills;
  }
  EXPECT_GE(Kills, 5u) << "the storm must actually kill the run at five or "
                          "more distinct abort points";

  // 3. Final fault-free run over the battered state: it must resume journaled
  // work rather than redo it, and its rows must be bit-identical to the clean
  // baseline on every deterministic field (timings and cache-locality
  // counters legitimately differ).
  ASSERT_EQ(runChild(Exe, StormDir, nullptr), 0);
  std::vector<frontend::CaseResult> Final;
  unsigned Resumed = 0;
  ASSERT_TRUE(readResults(StormDir, Final, Resumed));
  ASSERT_EQ(Final.size(), Baseline.size());
  EXPECT_GT(Resumed, 0u);
  for (size_t I = 0; I < Final.size(); ++I) {
    const frontend::CaseResult &A = Baseline[I], &B = Final[I];
    EXPECT_EQ(B.Name, A.Name);
    EXPECT_EQ(B.Isa, A.Isa) << A.Name;
    EXPECT_EQ(B.Ok, A.Ok) << A.Name;
    EXPECT_EQ(B.Error, A.Error) << A.Name;
    EXPECT_EQ(B.AsmInstrs, A.AsmInstrs) << A.Name;
    EXPECT_EQ(B.ItlEvents, A.ItlEvents) << A.Name;
    EXPECT_EQ(B.SpecSize, A.SpecSize) << A.Name;
    EXPECT_EQ(B.Hints, A.Hints) << A.Name;
    EXPECT_EQ(B.Proof.PathsVerified, A.Proof.PathsVerified) << A.Name;
    EXPECT_EQ(B.Proof.EventsProcessed, A.Proof.EventsProcessed) << A.Name;
    EXPECT_EQ(B.Proof.Entailments, A.Proof.Entailments) << A.Name;
    EXPECT_EQ(B.Proof.SolverQueries, A.Proof.SolverQueries) << A.Name;
  }

  // 4. The stores survived the storm coherent: every published entry
  // verifies (crashes can strand temp files, but never publish torn data or
  // leave the layout in a legacy state).
  for (const char *Sub : {"/traces", "/sidecond"}) {
    cache::ScrubOptions SO;
    SO.Dir = StormDir + Sub;
    cache::ScrubReport Rep = cache::scrubStore(SO);
    EXPECT_EQ(Rep.Quarantined, 0u) << Sub;
    EXPECT_EQ(Rep.LegacyMigrated, 0u) << Sub;
    EXPECT_GT(Rep.OkEntries, 0u) << Sub;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Custom main: child mode bypasses gtest entirely.
//===----------------------------------------------------------------------===//

int main(int argc, char **argv) {
  if (std::getenv("ISLARIS_CRASHSTORM_CHILD"))
    return crashstormChild();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
