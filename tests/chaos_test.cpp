//===- tests/chaos_test.cpp - Fault-injected end-to-end suite runs --------------===//
//
// The pipeline-level fault-tolerance property: under injected cache I/O
// faults, spurious solver give-ups, and transient executor faults, every
// Fig. 12 case study either verifies with results bit-identical to the
// fault-free run or fails with a cleanly attributed infrastructure
// diagnostic.  Never a crash, never a hang, never a silently different
// verdict.
//
//===----------------------------------------------------------------------===//

#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"
#include "frontend/CaseStudies.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace islaris;
using islaris::frontend::CaseResult;
using islaris::frontend::SuiteOptions;
using islaris::support::FaultInjector;
using islaris::support::FaultSite;

namespace {

namespace fs = std::filesystem;

struct ScopedDir {
  std::string Path;
  explicit ScopedDir(const std::string &Name) : Path("chaos-scratch-" + Name) {
    std::error_code EC;
    fs::remove_all(Path, EC);
    fs::create_directories(Path, EC);
  }
  ~ScopedDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

/// The fault-free reference run, computed once: the suite is deterministic,
/// so these rows are the ground truth every chaos run is compared against.
const std::vector<CaseResult> &baseline() {
  static const std::vector<CaseResult> B = [] {
    SuiteOptions O;
    O.Threads = 2;
    return runAllCaseStudies(O);
  }();
  return B;
}

/// A chaos run's row must match the baseline row exactly — same verdict,
/// same error, same measured trace/spec shape — or be a cleanly attributed
/// infrastructure failure.  Anything else (a crash would never reach here;
/// a different Ok-result would be a silently wrong verdict) is a bug.
void expectIdenticalOrAttributed(const std::vector<CaseResult> &Run,
                                 const char *Tag) {
  const std::vector<CaseResult> &Base = baseline();
  ASSERT_EQ(Run.size(), Base.size());
  for (size_t I = 0; I < Run.size(); ++I) {
    const CaseResult &R = Run[I], &B = Base[I];
    if (R.Ok) {
      EXPECT_EQ(B.Ok, true) << Tag << ": " << B.Name
                            << " passed under faults but not fault-free";
      EXPECT_EQ(R.Error, B.Error) << Tag << ": " << R.Name;
      EXPECT_EQ(R.AsmInstrs, B.AsmInstrs) << Tag << ": " << R.Name;
      EXPECT_EQ(R.ItlEvents, B.ItlEvents) << Tag << ": " << R.Name;
      EXPECT_EQ(R.SpecSize, B.SpecSize) << Tag << ": " << R.Name;
      continue;
    }
    // A failing row must carry an infrastructure diagnostic attributing
    // the failure to the injected fault machinery, not a proof failure
    // the fault-free run never saw.
    EXPECT_TRUE(support::isInfrastructureError(R.D.Code))
        << Tag << ": " << R.Name << " failed with ["
        << support::errorCodeName(R.D.Code) << "] " << R.Error;
    EXPECT_FALSE(R.Error.empty()) << Tag << ": " << R.Name;
  }
}

TEST(ChaosTest, BaselineAllNineVerify) {
  for (const CaseResult &R : baseline())
    EXPECT_TRUE(R.Ok) << R.Name << " (" << R.Isa << "): " << R.Error;
  EXPECT_EQ(frontend::suiteExitCode(baseline()), 0);
}

TEST(ChaosTest, ReplayEngineMatchesBaseline) {
  // The differential oracle under suite conditions: the legacy replay
  // engine must reproduce the (snapshot-engine) baseline rows exactly.
  SuiteOptions O;
  O.Threads = 2;
  O.Engine = islaris::isla::ExecEngine::Replay;
  std::vector<CaseResult> Run = runAllCaseStudies(O);
  for (const CaseResult &R : Run)
    EXPECT_TRUE(R.Ok) << R.Name << " (" << R.Isa << "): " << R.Error;
  expectIdenticalOrAttributed(Run, "replay-engine");
}

TEST(ChaosTest, ReplayEngineUnderExecFaultsNeverLies) {
  FaultInjector FI(/*Seed=*/4321);
  FI.setRate(FaultSite::ExecStep, 0.05);
  FI.setRate(FaultSite::ExecThrow, 0.02);
  SuiteOptions O;
  O.Threads = 2;
  O.Faults = &FI;
  O.Engine = islaris::isla::ExecEngine::Replay;
  O.Limits.JobRetries = 3;
  std::vector<CaseResult> Run = runAllCaseStudies(O);
  expectIdenticalOrAttributed(Run, "replay-exec-faults");
}

TEST(ChaosTest, CacheIoFaultsNeverChangeResults) {
  // Cache faults can only cost performance: a failed read is a miss, a
  // failed write loses an entry, a torn write publishes a corrupt file the
  // next reader must detect and self-repair.  Verdicts and measurements
  // must be bit-identical to fault-free, on BOTH runs — the second run
  // reads the possibly-torn leftovers of the first through cold caches.
  ScopedDir TraceDir("trace");
  ScopedDir SideDir("side");
  FaultInjector FI(/*Seed=*/42);
  FI.setRate(FaultSite::CacheRead, 0.3);
  FI.setRate(FaultSite::CacheWrite, 0.2);
  FI.setRate(FaultSite::CacheRename, 0.2);
  FI.setRate(FaultSite::CacheTornWrite, 0.3);

  for (int Round = 0; Round < 2; ++Round) {
    cache::TraceCacheConfig TC;
    TC.Persist = true;
    TC.Dir = TraceDir.Path;
    cache::TraceCache Trace(TC);
    cache::SideCondConfig SC;
    SC.Persist = true;
    SC.Dir = SideDir.Path;
    cache::SideCondStore Side(SC);

    SuiteOptions O;
    O.Threads = 2;
    O.Cache = &Trace;
    O.SideCond = &Side;
    O.Faults = &FI;
    std::vector<CaseResult> Run = runAllCaseStudies(O);
    for (const CaseResult &R : Run)
      EXPECT_TRUE(R.Ok) << "round " << Round << ": " << R.Name << ": "
                        << R.Error;
    expectIdenticalOrAttributed(Run, Round ? "cache-faults/warm"
                                           : "cache-faults/cold");
  }
  // The injector actually fired (otherwise this test proves nothing).
  EXPECT_GT(FI.injected(FaultSite::CacheRead) +
                FI.injected(FaultSite::CacheWrite) +
                FI.injected(FaultSite::CacheTornWrite),
            0u);
}

TEST(ChaosTest, SpuriousSolverUnknownsAreIdenticalOrAttributed) {
  FaultInjector FI(/*Seed=*/7);
  FI.setRate(FaultSite::SolverUnknown, 0.02);
  SuiteOptions O;
  O.Threads = 2;
  O.Faults = &FI;
  std::vector<CaseResult> Run = runAllCaseStudies(O);
  expectIdenticalOrAttributed(Run, "solver-unknown");
  EXPECT_GT(FI.probes(FaultSite::SolverUnknown), 0u);
}

TEST(ChaosTest, TransientExecutorFaultsRetryOrAttribute) {
  FaultInjector FI(/*Seed=*/1234);
  FI.setRate(FaultSite::ExecStep, 0.05);
  FI.setRate(FaultSite::ExecThrow, 0.02);
  SuiteOptions O;
  O.Threads = 2;
  O.Faults = &FI;
  O.Limits.JobRetries = 3; // transient faults should mostly retry through
  std::vector<CaseResult> Run = runAllCaseStudies(O);
  expectIdenticalOrAttributed(Run, "exec-faults");
  EXPECT_GT(FI.probes(FaultSite::ExecStep), 0u);
}

TEST(ChaosTest, EverythingAtOnceStillNeverLies) {
  ScopedDir TraceDir("all-trace");
  FaultInjector FI(/*Seed=*/99);
  FI.setRate(FaultSite::CacheRead, 0.2);
  FI.setRate(FaultSite::CacheTornWrite, 0.2);
  FI.setRate(FaultSite::SolverUnknown, 0.01);
  FI.setRate(FaultSite::ExecStep, 0.02);

  cache::TraceCacheConfig TC;
  TC.Persist = true;
  TC.Dir = TraceDir.Path;
  cache::TraceCache Trace(TC);

  SuiteOptions O;
  O.Threads = 2;
  O.Cache = &Trace;
  O.Faults = &FI;
  O.Limits.JobRetries = 2;
  std::vector<CaseResult> Run = runAllCaseStudies(O);
  expectIdenticalOrAttributed(Run, "everything");
  // Aggregation: the run completed; its exit code reflects whether any
  // study was lost to the injected faults.
  int Exit = frontend::suiteExitCode(Run);
  frontend::SuiteSummary S = frontend::summarize(Run);
  EXPECT_EQ(S.ProofFailures, 0u); // faults must never look like proof bugs
  EXPECT_EQ(Exit, S.InfraErrors ? 2 : 0);
}

} // namespace
