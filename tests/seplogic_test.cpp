//===- tests/seplogic_test.cpp - Proof engine tests ----------------------------===//
//
// Drives the Islaris separation-logic engine over hand-built ITL traces
// (independently of the ISA models), covering each proof rule of Figs. 5
// and 11 plus loop invariants and MMIO specifications.
//
//===----------------------------------------------------------------------===//

#include "seplogic/Engine.h"
#include "seplogic/IoSpec.h"
#include "seplogic/Spec.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::seplogic;
using islaris::itl::Event;
using islaris::itl::Reg;
using islaris::itl::Trace;
using smt::Sort;
using smt::Term;

namespace {

/// Convenience fixture holding a builder and helpers for hand-made traces.
class EngineTest : public ::testing::Test {
protected:
  smt::TermBuilder TB;

  const Term *bv64(uint64_t V) { return TB.constBV(64, V); }

  /// Appends "PC := PC + 4" events to a trace.
  void nextPc(Trace &T, const char *Tag) {
    const Term *Pc = TB.freshVar(Sort::bitvec(64), std::string("pc_") + Tag);
    T.Events.push_back(Event::declareConst(Pc));
    T.Events.push_back(Event::readReg(Reg("_PC"), Pc));
    const Term *Next =
        TB.freshVar(Sort::bitvec(64), std::string("pcn_") + Tag);
    T.Events.push_back(Event::defineConst(Next, TB.bvAdd(Pc, bv64(4))));
    T.Events.push_back(Event::writeReg(Reg("_PC"), Next));
  }

  /// An instruction "Xd := Xd + Imm" followed by the PC bump.
  Trace addImm(const char *Rd, uint64_t Imm, const char *Tag) {
    Trace T;
    const Term *V = TB.freshVar(Sort::bitvec(64), std::string("v_") + Tag);
    T.Events.push_back(Event::declareConst(V));
    T.Events.push_back(Event::readReg(Reg(Rd), V));
    const Term *Sum = TB.freshVar(Sort::bitvec(64), std::string("s_") + Tag);
    T.Events.push_back(Event::defineConst(Sum, TB.bvAdd(V, bv64(Imm))));
    T.Events.push_back(Event::writeReg(Reg(Rd), Sum));
    nextPc(T, Tag);
    return T;
  }

  /// "br Xn" — an indirect jump.
  Trace branchReg(const char *Rn, const char *Tag) {
    Trace T;
    const Term *V = TB.freshVar(Sort::bitvec(64), std::string("v_") + Tag);
    T.Events.push_back(Event::declareConst(V));
    T.Events.push_back(Event::readReg(Reg(Rn), V));
    T.Events.push_back(Event::writeReg(Reg("_PC"), V));
    return T;
  }

  /// "b Target".
  Trace branchImm(uint64_t Target) {
    Trace T;
    T.Events.push_back(Event::writeReg(Reg("_PC"), bv64(Target)));
    return T;
  }

  /// "cbz Rn, Target": Cases with asserts, as the executor emits them.
  Trace cbz(const char *Rn, uint64_t Target, const char *Tag) {
    Trace T;
    const Term *V = TB.freshVar(Sort::bitvec(64), std::string("v_") + Tag);
    T.Events.push_back(Event::declareConst(V));
    T.Events.push_back(Event::readReg(Reg(Rn), V));
    const Term *Cond = TB.eqTerm(V, bv64(0));
    Trace Taken;
    Taken.Events.push_back(Event::assertE(Cond));
    Taken.Events.push_back(Event::writeReg(Reg("_PC"), bv64(Target)));
    Trace Fall;
    Fall.Events.push_back(Event::assertE(TB.notTerm(Cond)));
    nextPc(Fall, Tag);
    T.Cases = {std::move(Taken), std::move(Fall)};
    return T;
  }
};

TEST_F(EngineTest, StraightLineIncrement) {
  // 0x1000: X0 += 1;  0x1004: br X30.
  Trace I0 = addImm("X0", 1, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *N = Entry.evar(64, "n");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X0", N).reg("X30", R).instrPre(R, &Post);
  Post.reg("X0", TB.bvAdd(N, bv64(1))).reg("X30", R);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
  EXPECT_GE(PE.stats().EventsProcessed, 8u);
  EXPECT_EQ(PE.stats().PathsVerified, 1u);
}

TEST_F(EngineTest, WrongPostconditionFails) {
  Trace I0 = addImm("X0", 1, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *N = Entry.evar(64, "n");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X0", N).reg("X30", R).instrPre(R, &Post);
  Post.reg("X0", TB.bvAdd(N, bv64(2))); // wrong: claims +2

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_FALSE(PE.verifyAll());
  EXPECT_NE(PE.error().find("cannot prove"), std::string::npos)
      << PE.error();
}

TEST_F(EngineTest, MissingRegisterChunkFails) {
  Trace I0 = addImm("X7", 1, "i0"); // spec says nothing about X7
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}};
  Spec Entry(TB, "entry");
  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_FALSE(PE.verifyAll());
  EXPECT_NE(PE.error().find("points-to"), std::string::npos) << PE.error();
}

TEST_F(EngineTest, AssumeRegObligation) {
  // The Isla trace assumes PSTATE.EL == 2; the spec must supply it.
  Trace I0;
  I0.Events.push_back(
      Event::assumeReg(Reg("PSTATE", "EL"), TB.constBV(2, 2)));
  nextPc(I0, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  {
    Spec Good(TB, "good");
    const Term *R = Good.evar(64, "r");
    Good.reg(Reg("PSTATE", "EL"), TB.constBV(2, 2))
        .reg("X30", R)
        .instrPre(R, &Post);
    ProofEngine PE(TB, Prog);
    PE.registerSpec(0x1000, &Good);
    EXPECT_TRUE(PE.verifyAll()) << PE.error();
  }
  {
    Spec Bad(TB, "bad");
    const Term *R = Bad.evar(64, "r");
    Bad.reg(Reg("PSTATE", "EL"), TB.constBV(2, 1)) // EL1: violates assume
        .reg("X30", R)
        .instrPre(R, &Post);
    ProofEngine PE(TB, Prog);
    PE.registerSpec(0x1000, &Bad);
    EXPECT_FALSE(PE.verifyAll());
    EXPECT_NE(PE.error().find("assume-reg"), std::string::npos)
        << PE.error();
  }
}

TEST_F(EngineTest, BranchCasesBothVerified) {
  // 0x1000: cbz X0, 0x100c; 0x1004: X1 += 1; 0x1008: br X30;
  // 0x100c: br X30.  Post: X1 is n1+1 if X0 != 0 else n1 (as an ite).
  Trace I0 = cbz("X0", 0x100c, "i0");
  Trace I1 = addImm("X1", 1, "i1");
  Trace I2 = branchReg("X30", "i2");
  Trace I3 = branchReg("X30", "i3");
  std::map<uint64_t, const Trace *> Prog = {
      {0x1000, &I0}, {0x1004, &I1}, {0x1008, &I2}, {0x100c, &I3}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *N0 = Entry.evar(64, "n0");
  const Term *N1 = Entry.evar(64, "n1");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X0", N0).reg("X1", N1).reg("X30", R).instrPre(R, &Post);
  const Term *Expected = TB.iteTerm(TB.eqTerm(N0, bv64(0)), N1,
                                    TB.bvAdd(N1, bv64(1)));
  Post.reg("X1", Expected);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
  EXPECT_EQ(PE.stats().PathsVerified, 2u);
}

TEST_F(EngineTest, CountdownLoopViaSelfInvariant) {
  // 0x1000: cbz X0, 0x100c; 0x1004: X0 -= 1 (add ~0);
  // 0x1008: b 0x1000; 0x100c: br X30.
  // The registered entry spec doubles as the loop invariant: the back-edge
  // re-proves it (Löb), and the exit branch proves the postcondition using
  // the X0 == 0 path fact.
  Trace I0 = cbz("X0", 0x100c, "i0");
  Trace I1 = addImm("X0", ~uint64_t(0), "i1");
  Trace I2 = branchImm(0x1000);
  Trace I3 = branchReg("X30", "i3");
  std::map<uint64_t, const Trace *> Prog = {
      {0x1000, &I0}, {0x1004, &I1}, {0x1008, &I2}, {0x100c, &I3}};

  Spec Post(TB, "post");
  Spec Entry(TB, "inv");
  const Term *N = Entry.evar(64, "n");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X0", N).reg("X30", R).instrPre(R, &Post);
  Post.reg("X0", bv64(0)).reg("X30", R);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
  // One path proves the post (exit), one re-proves the invariant.
  EXPECT_EQ(PE.stats().PathsVerified, 2u);
}

TEST_F(EngineTest, MissingInvariantExhaustsBudget) {
  // The same countdown loop, but with the back edge jumping to a *copy* of
  // the loop head that has no registered spec: the engine unrolls forever
  // and must stop with a budget diagnostic.
  Trace I0 = cbz("X0", 0x100c, "i0");
  Trace I1 = addImm("X0", ~uint64_t(0), "i1");
  Trace I2 = branchImm(0x1004); // jumps into the body, skipping the head
  Trace I3 = branchReg("X30", "i3");
  std::map<uint64_t, const Trace *> Prog = {
      {0x1000, &I0}, {0x1004, &I1}, {0x1008, &I2}, {0x100c, &I3}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *N = Entry.evar(64, "n");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X0", N).reg("X30", R).instrPre(R, &Post);
  Post.regAny(Reg("X0"));

  ProofEngine PE(TB, Prog);
  PE.MaxInstrsPerPath = 64;
  PE.registerSpec(0x1000, &Entry);
  EXPECT_FALSE(PE.verifyAll());
  EXPECT_NE(PE.error().find("budget"), std::string::npos) << PE.error();
}

TEST_F(EngineTest, MemoryReadWriteChunks) {
  // 0x1000: load byte at [X1] into X2's low byte surrogate; store to [X3];
  // then br X30.  Uses plain |->M chunks.
  Trace I0;
  const Term *A1 = TB.freshVar(Sort::bitvec(64), "a1");
  I0.Events.push_back(Event::declareConst(A1));
  I0.Events.push_back(Event::readReg(Reg("X1"), A1));
  const Term *D = TB.freshVar(Sort::bitvec(8), "d");
  I0.Events.push_back(Event::declareConst(D));
  I0.Events.push_back(Event::readMem(D, A1, 1));
  const Term *A3 = TB.freshVar(Sort::bitvec(64), "a3");
  I0.Events.push_back(Event::declareConst(A3));
  I0.Events.push_back(Event::readReg(Reg("X3"), A3));
  I0.Events.push_back(Event::writeMem(A3, D, 1));
  nextPc(I0, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *S = Entry.evar(64, "s");
  const Term *T = Entry.evar(64, "t");
  const Term *B = Entry.evar(8, "b");
  const Term *Old = Entry.evar(8, "old");
  const Term *R = Entry.evar(64, "r");
  Entry.reg("X1", S).reg("X3", T).reg("X30", R);
  Entry.mem(S, B, 1).mem(T, Old, 1);
  // Without disjointness of S and T the copy result is ambiguous; make
  // them concrete enough: require T = S + 1 as a pure fact.
  Entry.pure(TB.eqTerm(T, TB.bvAdd(S, bv64(1))));
  Entry.instrPre(R, &Post);
  Post.mem(S, B, 1).mem(T, B, 1);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
}

TEST_F(EngineTest, ArrayChunkSymbolicIndex) {
  // 0x1000: read array[X2] (byte), write it to array2[X2]; br X30 — with a
  // symbolic in-bounds index.
  Trace I0;
  const Term *Base = TB.freshVar(Sort::bitvec(64), "base");
  I0.Events.push_back(Event::declareConst(Base));
  I0.Events.push_back(Event::readReg(Reg("X1"), Base));
  const Term *Idx = TB.freshVar(Sort::bitvec(64), "idx");
  I0.Events.push_back(Event::declareConst(Idx));
  I0.Events.push_back(Event::readReg(Reg("X2"), Idx));
  const Term *D = TB.freshVar(Sort::bitvec(8), "d");
  I0.Events.push_back(Event::declareConst(D));
  I0.Events.push_back(Event::readMem(D, TB.bvAdd(Base, Idx), 1));
  const Term *Base2 = TB.freshVar(Sort::bitvec(64), "base2");
  I0.Events.push_back(Event::declareConst(Base2));
  I0.Events.push_back(Event::readReg(Reg("X3"), Base2));
  I0.Events.push_back(Event::writeMem(TB.bvAdd(Base2, Idx), D, 1));
  nextPc(I0, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *S = Entry.evar(64, "s");
  const Term *Dst = Entry.evar(64, "dst");
  const Term *I = Entry.evar(64, "i");
  const Term *R = Entry.evar(64, "r");
  std::vector<const Term *> Src, DstElems;
  for (int K = 0; K < 4; ++K) {
    Src.push_back(Entry.evar(8, "src" + std::to_string(K)));
    DstElems.push_back(Entry.evar(8, "dst" + std::to_string(K)));
  }
  Entry.reg("X1", S).reg("X2", I).reg("X3", Dst).reg("X30", R);
  Entry.array(S, Src, 1).array(Dst, DstElems, 1);
  Entry.pure(TB.bvUlt(I, bv64(4)));
  // Keep the two arrays apart so the findM search cannot mis-associate.
  Entry.pure(TB.eqTerm(Dst, TB.bvAdd(S, bv64(4))));
  Entry.instrPre(R, &Post);
  // Post: dst[k] == ite(k == i, src[k], old dst[k]) for each k.
  std::vector<const Term *> PostElems;
  for (int K = 0; K < 4; ++K)
    PostElems.push_back(TB.iteTerm(TB.eqTerm(I, bv64(unsigned(K))), Src[size_t(K)],
                                   DstElems[size_t(K)]));
  Post.array(Dst, PostElems, 1);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
}

TEST_F(EngineTest, MmioPollLoopAgainstIoSpec) {
  // The UART shape of §6: poll LSR until bit 5 is set, then write C to IO.
  constexpr uint64_t LSR = 0x3f215054, IO = 0x3f215040;
  // 0x1000: w = [LSR]; cbz-like on bit 5: if set -> 0x1004 else -> 0x1000.
  Trace I0;
  const Term *W = TB.freshVar(Sort::bitvec(32), "w");
  I0.Events.push_back(Event::declareConst(W));
  I0.Events.push_back(Event::readMem(W, bv64(LSR), 4));
  const Term *Ready = TB.eqTerm(TB.extract(5, 5, W), TB.constBV(1, 1));
  Trace Go;
  Go.Events.push_back(Event::assertE(Ready));
  Go.Events.push_back(Event::writeReg(Reg("_PC"), bv64(0x1004)));
  Trace Again;
  Again.Events.push_back(Event::assertE(TB.notTerm(Ready)));
  Again.Events.push_back(Event::writeReg(Reg("_PC"), bv64(0x1000)));
  I0.Cases = {std::move(Go), std::move(Again)};
  // 0x1004: [IO] = X0 (32-bit); 0x1008: br X30.
  Trace I1;
  const Term *C = TB.freshVar(Sort::bitvec(64), "c");
  I1.Events.push_back(Event::declareConst(C));
  I1.Events.push_back(Event::readReg(Reg("X0"), C));
  I1.Events.push_back(Event::writeMem(bv64(IO), TB.extract(31, 0, C), 4));
  nextPc(I1, "i1");
  Trace I2 = branchReg("X30", "i2");
  std::map<uint64_t, const Trace *> Prog = {
      {0x1000, &I0}, {0x1004, &I1}, {0x1008, &I2}};

  // spec(s) = srec(R. exists b. scons(R(LSR,b),
  //                  b[5] ? scons(W(IO,c), done) : R)).
  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *CVal = Entry.evar(64, "cv");
  const Term *R = Entry.evar(64, "r");
  IoSpecPtr Done = IoSpecNode::done();
  IoSpecPtr S = IoSpecNode::rec([&, CVal](IoSpecPtr Self) {
    return IoSpecNode::readStep(
        LSR, 4, [&, CVal, Self](const Term *B, smt::TermBuilder &TB2) {
          const Term *Bit = TB2.eqTerm(TB2.extract(5, 5, B),
                                       TB2.constBV(1, 1));
          return IoSpecNode::branch(
              Bit,
              IoSpecNode::writeStep(
                  IO, 4,
                  [CVal](const Term *V, smt::TermBuilder &TB3) {
                    return TB3.eqTerm(V, TB3.extract(31, 0, CVal));
                  },
                  Done),
              Self);
        });
  });
  Entry.reg("X0", CVal).reg("X30", R);
  Entry.mmio(IO, 4).mmio(LSR, 4);
  Entry.io(S);
  Entry.instrPre(R, &Post);
  Post.io(Done);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
  // Two verified paths: ready (writes and returns) and retry (re-proves
  // the invariant at 0x1000).
  EXPECT_EQ(PE.stats().PathsVerified, 2u);
}

TEST_F(EngineTest, MmioWriteOutsideSpecFails) {
  constexpr uint64_t IO = 0x3f215040;
  Trace I0;
  I0.Events.push_back(Event::writeMem(bv64(IO), TB.constBV(32, 7), 4));
  nextPc(I0, "i0");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}};
  Spec Entry(TB, "entry");
  Entry.mmio(IO, 4);
  Entry.io(IoSpecNode::done()); // no events allowed
  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_FALSE(PE.verifyAll());
  EXPECT_NE(PE.error().find("IO specification"), std::string::npos)
      << PE.error();
}

TEST_F(EngineTest, RegColIsFlattenedAndMatched) {
  Trace I0 = addImm("X0", 1, "i0");
  Trace I1 = branchReg("X30", "i1");
  std::map<uint64_t, const Trace *> Prog = {{0x1000, &I0}, {0x1004, &I1}};

  Spec Post(TB, "post");
  Spec Entry(TB, "entry");
  const Term *N = Entry.evar(64, "n");
  const Term *R = Entry.evar(64, "r");
  RegColChunk Col;
  Col.Name = "sys_regs";
  Col.Regs.push_back({Reg("X0"), N});
  Col.Regs.push_back({Reg("SCTLR_EL1"), Entry.evar(64, "sctlr")});
  Entry.regCol(Col).reg("X30", R).instrPre(R, &Post);
  RegColChunk PostCol;
  PostCol.Name = "sys_regs";
  PostCol.Regs.push_back({Reg("X0"), TB.bvAdd(N, bv64(1))});
  Post.regCol(PostCol);

  ProofEngine PE(TB, Prog);
  PE.registerSpec(0x1000, &Entry);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
}

} // namespace
