//===- tests/models_test.cpp - ISA model + assembler agreement ----------------===//
//
// Validates the Armv8-A and RV64 mini-Sail models by executing assembled
// opcodes through the concrete interpreter and checking architectural
// effects: banked SP selection, NZCV flags, exception entry/return,
// alignment faults, and the RISC-V basics.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "models/Models.h"
#include "sail/Interpreter.h"

#include <gtest/gtest.h>

using namespace islaris;
using islaris::itl::MachineState;
using islaris::itl::Reg;
using smt::Value;

namespace {

namespace a64 = arch::aarch64;
namespace rv = arch::rv64;

/// Fully initialized AArch64 machine state at the given EL.
MachineState armState(uint64_t El, uint64_t SpSel = 1) {
  MachineState S;
  S.PcReg = "_PC";
  for (int I = 0; I <= 30; ++I)
    S.setReg(a64::xreg(unsigned(I)), Value(BitVec(64, 0)));
  for (const char *R :
       {"SP_EL0", "SP_EL1", "SP_EL2", "SP_EL3", "VBAR_EL1", "VBAR_EL2",
        "SCTLR_EL1", "SCTLR_EL2", "HCR_EL2", "SPSR_EL1", "SPSR_EL2",
        "ELR_EL1", "ELR_EL2", "ESR_EL1", "ESR_EL2", "FAR_EL1", "FAR_EL2",
        "TPIDR_EL2", "MAIR_EL2", "TCR_EL2", "TTBR0_EL2", "MDCR_EL2",
        "CPTR_EL2", "HSTR_EL2", "VTTBR_EL2", "VTCR_EL2", "CNTHCTL_EL2",
        "CNTVOFF_EL2"})
    S.setReg(Reg(R), Value(BitVec(64, 0)));
  for (const char *F : {"N", "Z", "C", "V", "D", "A", "I", "F", "SP"})
    S.setReg(Reg("PSTATE", F), Value(BitVec(1, 0)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, SpSel)));
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, El)));
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x80000)));
  return S;
}

uint64_t getX(const MachineState &S, unsigned N) {
  return S.getReg(a64::xreg(N))->asBitVec().toUInt64();
}
uint64_t getR(const MachineState &S, const char *Name) {
  return S.getReg(Reg(Name))->asBitVec().toUInt64();
}

/// Executes one AArch64 opcode concretely.
void step(MachineState &S, uint32_t Op) {
  sail::Interpreter I(models::aarch64Model());
  auto R = I.callFunction("decode", {Value(BitVec(32, Op))}, S);
  ASSERT_TRUE(R.Ok) << "opcode " << BitVec(32, Op).toHexString() << ": "
                    << R.Error;
}

TEST(ArmModelTest, PaperOpcodeAddSpSp64) {
  // Fig. 3's opcode 0x910103ff is add sp, sp, #0x40.
  EXPECT_EQ(a64::enc::addImm(31, 31, 0x40), 0x910103ffu);
  MachineState S = armState(2);
  S.setReg(Reg("SP_EL2"), Value(BitVec(64, 0x9000)));
  step(S, 0x910103ff);
  EXPECT_EQ(getR(S, "SP_EL2"), 0x9040u);
  EXPECT_EQ(getR(S, "_PC"), 0x80004u);
  // The banked selection: same opcode at EL1 uses SP_EL1.
  MachineState S1 = armState(1);
  S1.setReg(Reg("SP_EL1"), Value(BitVec(64, 0x7000)));
  step(S1, 0x910103ff);
  EXPECT_EQ(getR(S1, "SP_EL1"), 0x7040u);
}

TEST(ArmModelTest, MovWideSequenceBuildsConstant) {
  MachineState S = armState(1);
  step(S, a64::enc::movz(0, 0xbeef, 0));
  step(S, a64::enc::movk(0, 0xdead, 1));
  step(S, a64::enc::movk(0, 0x1234, 3));
  EXPECT_EQ(getX(S, 0), 0x1234'0000'dead'beefull);
  step(S, a64::enc::movn(1, 0, 0));
  EXPECT_EQ(getX(S, 1), ~0ull);
}

TEST(ArmModelTest, FlagsAndConditionalBranch) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(2), Value(BitVec(64, 5)));
  S.setReg(a64::xreg(3), Value(BitVec(64, 5)));
  step(S, a64::enc::cmpReg(2, 3)); // equal -> Z=1, C=1
  EXPECT_EQ(S.getReg(Reg("PSTATE", "Z"))->asBitVec().toUInt64(), 1u);
  EXPECT_EQ(S.getReg(Reg("PSTATE", "C"))->asBitVec().toUInt64(), 1u);
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::bcond(a64::Cond::EQ, -16));
  EXPECT_EQ(getR(S, "_PC"), Pc - 16);
  step(S, a64::enc::bcond(a64::Cond::NE, -16)); // not taken
  EXPECT_EQ(getR(S, "_PC"), Pc - 16 + 4);
  // Signed comparison: -1 < 1.
  S.setReg(a64::xreg(2), Value(BitVec(64, ~0ull)));
  S.setReg(a64::xreg(3), Value(BitVec(64, 1)));
  step(S, a64::enc::cmpReg(2, 3));
  uint64_t Pc2 = getR(S, "_PC");
  step(S, a64::enc::bcond(a64::Cond::LT, 0x20));
  EXPECT_EQ(getR(S, "_PC"), Pc2 + 0x20);
}

TEST(ArmModelTest, LoadsAndStores) {
  MachineState S = armState(1);
  for (uint64_t A = 0x2000; A < 0x2020; ++A)
    S.Mem[A] = uint8_t(A & 0xff);
  S.setReg(a64::xreg(1), Value(BitVec(64, 0x2000)));
  S.setReg(a64::xreg(3), Value(BitVec(64, 5)));
  // ldrb w4, [x1, x3]
  step(S, a64::enc::ldrReg(0, 4, 1, 3));
  EXPECT_EQ(getX(S, 4), 0x05u);
  // strb w4, [x1, #16]
  step(S, a64::enc::strImm(0, 4, 1, 16));
  EXPECT_EQ(S.Mem.at(0x2010), 0x05u);
  // 64-bit load with scaled immediate: ldr x5, [x1, #8].
  step(S, a64::enc::ldrImm(3, 5, 1, 1));
  EXPECT_EQ(getX(S, 5), 0x0f0e0d0c0b0a0908ull);
  // XZR as the store source writes zero.
  step(S, a64::enc::strImm(3, 31, 1, 0));
  EXPECT_EQ(S.Mem.at(0x2000), 0u);
}

TEST(ArmModelTest, ShiftAliasesAndRbit) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(1), Value(BitVec(64, 0xff00)));
  step(S, a64::enc::lsrImm(2, 1, 8));
  EXPECT_EQ(getX(S, 2), 0xffu);
  step(S, a64::enc::lslImm(3, 1, 4));
  EXPECT_EQ(getX(S, 3), 0xff000u);
  S.setReg(a64::xreg(4), Value(BitVec(64, 0x8000000000000000ull)));
  step(S, a64::enc::asrImm(5, 4, 63));
  EXPECT_EQ(getX(S, 5), ~0ull);
  step(S, a64::enc::rbit64(6, 1));
  EXPECT_EQ(getX(S, 6), BitVec(64, 0xff00).reverseBits().toUInt64());
  // 32-bit rbit zeroes the upper half.
  S.setReg(a64::xreg(7), Value(BitVec(64, 0xffffffff00000001ull)));
  step(S, a64::enc::rbit32(8, 7));
  EXPECT_EQ(getX(S, 8), 0x80000000u);
}

TEST(ArmModelTest, CbzTbzBehaviour) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(2), Value(BitVec(64, 0)));
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::cbz(2, 0x40));
  EXPECT_EQ(getR(S, "_PC"), Pc + 0x40);
  S.setReg(a64::xreg(2), Value(BitVec(64, 1 << 5)));
  Pc = getR(S, "_PC");
  step(S, a64::enc::tbnz(2, 5, 0x30));
  EXPECT_EQ(getR(S, "_PC"), Pc + 0x30);
  Pc = getR(S, "_PC");
  step(S, a64::enc::tbz(2, 5, 0x30)); // bit is set: fall through
  EXPECT_EQ(getR(S, "_PC"), Pc + 4);
}

TEST(ArmModelTest, HvcTakesExceptionToEl2Vector) {
  MachineState S = armState(1);
  S.setReg(Reg("VBAR_EL2"), Value(BitVec(64, 0xa0000)));
  S.setReg(Reg("PSTATE", "Z"), Value(BitVec(1, 1)));
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::hvc(0));
  // Lower-EL AArch64 synchronous vector offset is 0x400.
  EXPECT_EQ(getR(S, "_PC"), 0xa0400u);
  EXPECT_EQ(S.getReg(Reg("PSTATE", "EL"))->asBitVec().toUInt64(), 2u);
  EXPECT_EQ(getR(S, "ELR_EL2"), Pc + 4);
  // ESR: EC=0x16, IL=1.
  EXPECT_EQ(getR(S, "ESR_EL2") >> 26, 0x16u);
  // SPSR banked the old PSTATE: EL1h, Z flag set.
  uint64_t Spsr = getR(S, "SPSR_EL2");
  EXPECT_EQ(Spsr & 0xf, 0x5u);        // M = EL1h
  EXPECT_EQ((Spsr >> 30) & 1, 1u);    // Z
  // Interrupts masked.
  EXPECT_EQ(S.getReg(Reg("PSTATE", "I"))->asBitVec().toUInt64(), 1u);
}

TEST(ArmModelTest, EretRestoresState) {
  MachineState S = armState(2);
  S.setReg(Reg("HCR_EL2"), Value(BitVec(64, 0x80000000ull)));
  S.setReg(Reg("SPSR_EL2"), Value(BitVec(64, 0x3c5))); // EL1h, DAIF set
  S.setReg(Reg("ELR_EL2"), Value(BitVec(64, 0x90000)));
  step(S, a64::enc::eret());
  EXPECT_EQ(getR(S, "_PC"), 0x90000u);
  EXPECT_EQ(S.getReg(Reg("PSTATE", "EL"))->asBitVec().toUInt64(), 1u);
  EXPECT_EQ(S.getReg(Reg("PSTATE", "SP"))->asBitVec().toUInt64(), 1u);
}

TEST(ArmModelTest, EretToAarch32IsModelException) {
  MachineState S = armState(2);
  S.setReg(Reg("HCR_EL2"), Value(BitVec(64, 0))); // RW = 0
  S.setReg(Reg("SPSR_EL2"), Value(BitVec(64, 0x3c5)));
  S.setReg(Reg("ELR_EL2"), Value(BitVec(64, 0x90000)));
  sail::Interpreter I(models::aarch64Model());
  auto R = I.callFunction("decode",
                          {Value(BitVec(32, a64::enc::eret()))}, S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("HCR_EL2.RW"), std::string::npos) << R.Error;
}

TEST(ArmModelTest, UnalignedStoreFaultsWhenSctlrABitSet) {
  MachineState S = armState(1);
  S.setReg(Reg("SCTLR_EL1"), Value(BitVec(64, 2))); // A bit (bit 1)
  S.setReg(Reg("VBAR_EL1"), Value(BitVec(64, 0xc0000)));
  S.setReg(a64::xreg(1), Value(BitVec(64, 0x2001))); // misaligned for 32-bit
  S.setReg(a64::xreg(0), Value(BitVec(64, 0xabcd)));
  for (uint64_t A = 0x2000; A < 0x2010; ++A)
    S.Mem[A] = 0;
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::strImm(2, 0, 1, 0)); // str w0, [x1]
  // Vectored to the current-EL-SPx entry (0x200).
  EXPECT_EQ(getR(S, "_PC"), 0xc0200u);
  EXPECT_EQ(getR(S, "FAR_EL1"), 0x2001u);
  EXPECT_EQ(getR(S, "ELR_EL1"), Pc);
  EXPECT_EQ(getR(S, "ESR_EL1") >> 26, 0x25u);     // data abort, same EL
  EXPECT_EQ(getR(S, "ESR_EL1") & 0x3f, 0x21u);    // DFSC = alignment
  EXPECT_EQ(S.Mem.at(0x2001), 0u);                // store suppressed
  // With the A bit clear the same store succeeds.
  MachineState S2 = armState(1);
  S2.setReg(a64::xreg(1), Value(BitVec(64, 0x2001)));
  S2.setReg(a64::xreg(0), Value(BitVec(64, 0xabcd)));
  for (uint64_t A = 0x2000; A < 0x2010; ++A)
    S2.Mem[A] = 0;
  step(S2, a64::enc::strImm(2, 0, 1, 0));
  EXPECT_EQ(S2.Mem.at(0x2001), 0xcdu);
}

TEST(ArmModelTest, MsrMrsRoundTrip) {
  MachineState S = armState(2);
  S.setReg(a64::xreg(0), Value(BitVec(64, 0xa0000)));
  step(S, a64::enc::msr(a64::SysReg::VBAR_EL2, 0));
  EXPECT_EQ(getR(S, "VBAR_EL2"), 0xa0000u);
  step(S, a64::enc::mrs(1, a64::SysReg::VBAR_EL2));
  EXPECT_EQ(getX(S, 1), 0xa0000u);
  step(S, a64::enc::mrs(2, a64::SysReg::CurrentEL));
  EXPECT_EQ(getX(S, 2), 2u << 2);
  step(S, a64::enc::nop());
}

TEST(ArmModelTest, BlAndRet) {
  MachineState S = armState(1);
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::bl(0x100));
  EXPECT_EQ(getR(S, "_PC"), Pc + 0x100);
  EXPECT_EQ(getX(S, 30), Pc + 4);
  step(S, a64::enc::ret());
  EXPECT_EQ(getR(S, "_PC"), Pc + 4);
  // blr x5.
  S.setReg(a64::xreg(5), Value(BitVec(64, 0x5000)));
  uint64_t Pc2 = getR(S, "_PC");
  step(S, a64::enc::blr(5));
  EXPECT_EQ(getR(S, "_PC"), 0x5000u);
  EXPECT_EQ(getX(S, 30), Pc2 + 4);
}

TEST(ArmModelTest, UndefinedOpcodesThrow) {
  MachineState S = armState(1);
  sail::Interpreter I(models::aarch64Model());
  for (uint32_t Op : {0x00000000u, 0xffffffffu, 0x0e000000u}) {
    MachineState SC = S;
    auto R = I.callFunction("decode", {Value(BitVec(32, Op))}, SC);
    EXPECT_FALSE(R.Ok) << BitVec(32, Op).toHexString();
  }
}

//===----------------------------------------------------------------------===//
// RV64.
//===----------------------------------------------------------------------===//

MachineState rvState() {
  MachineState S;
  S.PcReg = "PC";
  for (unsigned I = 1; I <= 31; ++I)
    S.setReg(rv::xreg(I), Value(BitVec(64, 0)));
  S.setReg(Reg("PC"), Value(BitVec(64, 0x10000)));
  return S;
}

void rstep(MachineState &S, uint32_t Op) {
  sail::Interpreter I(models::rv64Model());
  auto R = I.callFunction("decode", {Value(BitVec(32, Op))}, S);
  ASSERT_TRUE(R.Ok) << "opcode " << BitVec(32, Op).toHexString() << ": "
                    << R.Error;
}

uint64_t rvX(const MachineState &S, unsigned N) {
  return S.getReg(rv::xreg(N))->asBitVec().toUInt64();
}

TEST(RvModelTest, ArithmeticAndImmediates) {
  MachineState S = rvState();
  rstep(S, rv::enc::addi(10, 0, -5));
  EXPECT_EQ(int64_t(rvX(S, 10)), -5);
  rstep(S, rv::enc::lui(11, 0x12345));
  EXPECT_EQ(rvX(S, 11), 0x12345000u);
  rstep(S, rv::enc::add(12, 10, 11));
  EXPECT_EQ(rvX(S, 12), 0x12345000ull - 5);
  rstep(S, rv::enc::sub(13, 11, 10));
  EXPECT_EQ(rvX(S, 13), 0x12345000ull + 5);
  rstep(S, rv::enc::slli(14, 11, 4));
  EXPECT_EQ(rvX(S, 14), 0x123450000ull);
  rstep(S, rv::enc::srai(15, 10, 1));
  EXPECT_EQ(int64_t(rvX(S, 15)), -3);
  rstep(S, rv::enc::andi(16, 11, 0xff));
  EXPECT_EQ(rvX(S, 16), 0u);
  // Writes to x0 are discarded.
  rstep(S, rv::enc::addi(0, 11, 1));
  rstep(S, rv::enc::add(17, 0, 0));
  EXPECT_EQ(rvX(S, 17), 0u);
}

TEST(RvModelTest, LoadsStoresSignedness) {
  MachineState S = rvState();
  S.Mem[0x3000] = 0x80;
  S.Mem[0x3001] = 0x01;
  S.setReg(rv::xreg(5), Value(BitVec(64, 0x3000)));
  rstep(S, rv::enc::lb(6, 5, 0));
  EXPECT_EQ(int64_t(rvX(S, 6)), int64_t(int8_t(0x80)));
  rstep(S, rv::enc::lbu(7, 5, 0));
  EXPECT_EQ(rvX(S, 7), 0x80u);
  rstep(S, rv::enc::sb(6, 5, 1));
  EXPECT_EQ(S.Mem.at(0x3001), 0x80u);
  // 64-bit store/load round trip.
  for (uint64_t A = 0x3008; A < 0x3010; ++A)
    S.Mem[A] = 0;
  S.setReg(rv::xreg(8), Value(BitVec(64, 0x1122334455667788ull)));
  rstep(S, rv::enc::sd(8, 5, 8));
  rstep(S, rv::enc::ld(9, 5, 8));
  EXPECT_EQ(rvX(S, 9), 0x1122334455667788ull);
}

TEST(RvModelTest, BranchesAndJumps) {
  MachineState S = rvState();
  S.setReg(rv::xreg(5), Value(BitVec(64, 3)));
  S.setReg(rv::xreg(6), Value(BitVec(64, 3)));
  uint64_t Pc = S.getReg(Reg("PC"))->asBitVec().toUInt64();
  rstep(S, rv::enc::beq(5, 6, -16));
  EXPECT_EQ(S.getReg(Reg("PC"))->asBitVec().toUInt64(), Pc - 16);
  Pc -= 16;
  rstep(S, rv::enc::bne(5, 6, 0x20)); // not taken
  EXPECT_EQ(S.getReg(Reg("PC"))->asBitVec().toUInt64(), Pc + 4);
  Pc += 4;
  rstep(S, rv::enc::jal(1, 0x100));
  EXPECT_EQ(S.getReg(Reg("PC"))->asBitVec().toUInt64(), Pc + 0x100);
  EXPECT_EQ(rvX(S, 1), Pc + 4);
  rstep(S, rv::enc::ret());
  EXPECT_EQ(S.getReg(Reg("PC"))->asBitVec().toUInt64(), Pc + 4);
}

TEST(RvModelTest, UndefinedOpcodeThrows) {
  MachineState S = rvState();
  sail::Interpreter I(models::rv64Model());
  auto R = I.callFunction("decode", {Value(BitVec(32, 0))}, S);
  EXPECT_FALSE(R.Ok);
}

} // namespace

//===----------------------------------------------------------------------===//
// Extended instruction classes (CSEL family, ADR, UDIV/SDIV, REV, RV W-ops).
//===----------------------------------------------------------------------===//

namespace {

TEST(ArmModelTest, ConditionalSelectFamily) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(1), Value(BitVec(64, 0x1111)));
  S.setReg(a64::xreg(2), Value(BitVec(64, 0x2222)));
  S.setReg(Reg("PSTATE", "Z"), Value(BitVec(1, 1)));
  step(S, a64::enc::csel(3, 1, 2, a64::Cond::EQ)); // Z=1: take Xn
  EXPECT_EQ(getX(S, 3), 0x1111u);
  step(S, a64::enc::csel(3, 1, 2, a64::Cond::NE)); // !NE: take Xm
  EXPECT_EQ(getX(S, 3), 0x2222u);
  step(S, a64::enc::csinc(4, 1, 2, a64::Cond::NE));
  EXPECT_EQ(getX(S, 4), 0x2223u);
  step(S, a64::enc::csinv(5, 1, 2, a64::Cond::NE));
  EXPECT_EQ(getX(S, 5), ~0x2222ull);
  step(S, a64::enc::csneg(6, 1, 2, a64::Cond::NE));
  EXPECT_EQ(getX(S, 6), uint64_t(-0x2222ll));
  // cset xd, eq with Z=1 -> 1.
  step(S, a64::enc::cset(7, a64::Cond::EQ));
  EXPECT_EQ(getX(S, 7), 1u);
  step(S, a64::enc::cset(8, a64::Cond::NE));
  EXPECT_EQ(getX(S, 8), 0u);
}

TEST(ArmModelTest, AdrAndAdrp) {
  MachineState S = armState(1);
  uint64_t Pc = getR(S, "_PC");
  step(S, a64::enc::adr(1, 0x1234 & ~3));
  EXPECT_EQ(getX(S, 1), Pc + (0x1234 & ~3));
  step(S, a64::enc::adr(2, -8));
  EXPECT_EQ(getX(S, 2), Pc + 4 - 8);
  uint64_t Pc2 = getR(S, "_PC");
  step(S, a64::enc::adrp(3, 5));
  EXPECT_EQ(getX(S, 3), (Pc2 & ~0xfffull) + (5ull << 12));
}

TEST(ArmModelTest, DivisionSemantics) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(1), Value(BitVec(64, 100)));
  S.setReg(a64::xreg(2), Value(BitVec(64, 7)));
  step(S, a64::enc::udiv(3, 1, 2));
  EXPECT_EQ(getX(S, 3), 14u);
  // Division by zero yields zero on Arm.
  S.setReg(a64::xreg(4), Value(BitVec(64, 0)));
  step(S, a64::enc::udiv(5, 1, 4));
  EXPECT_EQ(getX(S, 5), 0u);
  step(S, a64::enc::sdiv(5, 1, 4));
  EXPECT_EQ(getX(S, 5), 0u);
  // Signed division truncates toward zero.
  S.setReg(a64::xreg(6), Value(BitVec(64, uint64_t(-100))));
  step(S, a64::enc::sdiv(7, 6, 2));
  EXPECT_EQ(int64_t(getX(S, 7)), -14);
  // INT_MIN / -1 wraps.
  S.setReg(a64::xreg(8), Value(BitVec(64, 1ull << 63)));
  S.setReg(a64::xreg(9), Value(BitVec(64, ~0ull)));
  step(S, a64::enc::sdiv(10, 8, 9));
  EXPECT_EQ(getX(S, 10), 1ull << 63);
}

TEST(ArmModelTest, ByteReverse) {
  MachineState S = armState(1);
  S.setReg(a64::xreg(1), Value(BitVec(64, 0x0102030405060708ull)));
  step(S, a64::enc::rev64(2, 1));
  EXPECT_EQ(getX(S, 2), 0x0807060504030201ull);
  step(S, a64::enc::rev32(3, 1)); // 32-bit REV on the low word
  EXPECT_EQ(getX(S, 3), 0x08070605u);
}

TEST(RvModelTest, WordOperations) {
  MachineState S = rvState();
  S.setReg(rv::xreg(5), Value(BitVec(64, 0xffffffff80000000ull)));
  S.setReg(rv::xreg(6), Value(BitVec(64, 1)));
  // addiw sign-extends the 32-bit result.
  rstep(S, rv::enc::addiw(7, 5, -1));
  EXPECT_EQ(rvX(S, 7), 0x7fffffffull);
  rstep(S, rv::enc::addw(8, 5, 6));
  EXPECT_EQ(rvX(S, 8), 0xffffffff80000001ull);
  rstep(S, rv::enc::subw(9, 5, 6));
  EXPECT_EQ(rvX(S, 9), 0x7fffffffull);
  rstep(S, rv::enc::slliw(10, 6, 31));
  EXPECT_EQ(rvX(S, 10), 0xffffffff80000000ull);
  rstep(S, rv::enc::srliw(11, 5, 4));
  EXPECT_EQ(rvX(S, 11), 0x08000000u);
  rstep(S, rv::enc::sraiw(12, 5, 4));
  EXPECT_EQ(rvX(S, 12), 0xfffffffff8000000ull);
  // Register-amount W shifts use the low 5 bits of rs2.
  S.setReg(rv::xreg(13), Value(BitVec(64, 33))); // 33 & 31 == 1
  rstep(S, rv::enc::sllw(14, 6, 13));
  EXPECT_EQ(rvX(S, 14), 2u);
  rstep(S, rv::enc::sraw(15, 5, 13));
  EXPECT_EQ(rvX(S, 15), 0xffffffffc0000000ull);
}

} // namespace
