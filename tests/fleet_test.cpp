//===- tests/fleet_test.cpp - Multi-daemon islarisd fleet tests ----------------===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
// The fleet contract (PR 10), end to end:
//
//  - health probes: the protocol-3 `health` request reports queue
//    pressure, the model generation fingerprint, and degraded flags, and
//    answers even while the daemon drains; protocol-2 peers still
//    handshake and get a clean error for the kinds they predate;
//  - hot model reload: SIGHUP/`reload` swaps the model registry under
//    load without dropping a single accepted request, bumps the
//    generation, and a parse failure leaves the serving registry
//    untouched;
//  - failover: a client holding a comma-separated endpoint list rides out
//    the loss of its daemon mid-stream — refused endpoints rotate past
//    immediately, the shared store makes the replay on the survivor
//    attach-or-reread (bit-identical), and a success resets the retry
//    backoff streak;
//  - degraded mode: store publish failures (injected ENOSPC) flip the
//    daemon into cache-off degraded mode once — it keeps serving from
//    memory and fresh execution — and the self-heal probe restores disk
//    I/O when the device recovers.
//
// Two in-process servers install/restore the process-ambient stores in
// LIFO-unfriendly order, so every multi-daemon test sticks to trace
// requests (which use the server's own stores explicitly); studies are
// exercised against fleets in CI, where each daemon is its own process.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"
#include "server/Transport.h"

#include "cache/TraceCache.h"
#include "support/FaultInjector.h"
#include "support/Wire.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace islaris;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

/// Self-cleaning scratch directory; also keeps socket paths short enough
/// for sockaddr_un.
struct TempDir {
  std::string Path;
  TempDir() {
    char T[] = "/tmp/islaris-fleet-XXXXXX";
    Path = ::mkdtemp(T);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

server::ServerConfig daemonConfig(const TempDir &D, const char *Sock) {
  server::ServerConfig C;
  C.SocketPath = D.Path + "/" + Sock;
  C.CacheDir = D.Path + "/cache"; // shared: the fleet serves one store
  C.Workers = 1;
  C.HeartbeatSeconds = 0.1;
  return C;
}

/// Failover-tuned client options: tight backoff so rotation is observable
/// in milliseconds, generous attempts so a drain race never flakes.
server::ClientOptions fleetClientOptions(uint64_t Seed = 7) {
  server::ClientOptions O;
  O.MaxAttempts = 25;
  O.BackoffBaseSeconds = 0.01;
  O.BackoffCapSeconds = 0.2;
  O.ConnectTimeoutSeconds = 2;
  O.SilenceTimeoutSeconds = 5;
  O.HeartbeatSeconds = 0.1;
  O.Seed = Seed;
  return O;
}

/// add x0, x0, #imm — a distinct, cheap, concrete execution per imm.
server::TraceRequest addImm(unsigned Imm) {
  server::TraceRequest T;
  T.Arch = "aarch64";
  T.Opcode = 0x91000000u | ((Imm & 0xfffu) << 10);
  return T;
}

/// Polls \p Pred every 20ms for up to \p Seconds.
bool waitFor(double Seconds, const std::function<bool()> &Pred) {
  Clock::time_point End =
      Clock::now() + std::chrono::milliseconds(int64_t(Seconds * 1000));
  while (Clock::now() < End) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

} // namespace

//===----------------------------------------------------------------------===//
// Health probes.
//===----------------------------------------------------------------------===//

TEST(FleetHealthTest, ProbeReportsReadinessFields) {
  TempDir D;
  server::Server S(daemonConfig(D, "a.sock"));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C(fleetClientOptions());
  ASSERT_TRUE(C.connect(D.Path + "/a.sock", Err)) << Err;
  EXPECT_EQ(C.peerVersion(), server::ProtocolVersion);

  server::HealthInfo H;
  ASSERT_TRUE(C.health(H, Err)) << Err;
  EXPECT_EQ(H.Version, server::ProtocolVersion);
  EXPECT_EQ(H.Pid, uint64_t(::getpid()));
  EXPECT_EQ(H.QueueDepth, 0u);
  EXPECT_EQ(H.ActiveJobs, 0u);
  EXPECT_EQ(H.Draining, 0u);
  EXPECT_EQ(H.Generation, 0u);
  EXPECT_FALSE(H.ModelFpHex.empty());
  EXPECT_EQ(H.DegradedFlags, 0u);

  // The stats JSON carries the same generation/degraded fields, so v2-era
  // tooling scraping stats sees the fleet state too.
  std::string Json;
  ASSERT_TRUE(C.getStats(Json, Err)) << Err;
  EXPECT_NE(Json.find("\"model_generation\":0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"degraded\":0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"model_fp\":\"" + H.ModelFpHex + "\""),
            std::string::npos)
      << Json;

  S.requestShutdown();
  S.wait();
  EXPECT_GE(S.stats().HealthRequests, 1u);
}

TEST(FleetHealthTest, ProtocolV2PeerHandshakesButHealthErrors) {
  TempDir D;
  server::Server S(daemonConfig(D, "a.sock"));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Hand-rolled protocol-2 peer: the negotiated welcome must echo 2, and
  // the kinds added in 3 must die as malformed (exactly what a real
  // protocol-2 server would answer), not crash or hang the daemon.
  int Fd = server::connectSpec(D.Path + "/a.sock", 2, Err);
  ASSERT_GE(Fd, 0) << Err;

  server::HelloInfo H;
  H.Version = 2;
  H.ClientName = "v2-relic";
  std::string Wire =
      server::encodeFrame({server::FrameType::Hello, server::encodeHello(H)});
  ASSERT_EQ(::write(Fd, Wire.data(), Wire.size()), ssize_t(Wire.size()));

  server::FrameReader R;
  auto NextFrame = [&](server::Frame &F) {
    char Buf[512];
    for (;;) {
      if (R.next(F) == server::FrameReader::Status::Frame)
        return true;
      ssize_t N = ::read(Fd, Buf, sizeof Buf);
      if (N <= 0)
        return false;
      R.feed(Buf, size_t(N));
    }
  };

  server::Frame F;
  ASSERT_TRUE(NextFrame(F));
  ASSERT_EQ(F.Type, server::FrameType::Welcome);
  support::wire::Cursor Cur(F.Payload);
  EXPECT_EQ(Cur.u64(), 2u); // negotiated down to the client's version

  server::Request Req;
  Req.Id = 1;
  Req.K = server::Request::Kind::Health;
  Wire = server::encodeFrame(
      {server::FrameType::Request, server::encodeRequest(Req)});
  ASSERT_EQ(::write(Fd, Wire.data(), Wire.size()), ssize_t(Wire.size()));

  bool SawError = false;
  while (NextFrame(F)) {
    if (F.Type == server::FrameType::Heartbeat)
      continue;
    SawError = F.Type == server::FrameType::Error;
    break;
  }
  EXPECT_TRUE(SawError);
  ::close(Fd);

  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Hot model reload.
//===----------------------------------------------------------------------===//

TEST(FleetReloadTest, ReloadBumpsGenerationAndKeepsServing) {
  TempDir D;
  server::Server S(daemonConfig(D, "a.sock"));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C(fleetClientOptions());
  ASSERT_TRUE(C.connect(D.Path + "/a.sock", Err)) << Err;

  server::HealthInfo H0;
  ASSERT_TRUE(C.health(H0, Err)) << Err;
  ASSERT_TRUE(C.reloadServer(Err)) << Err;

  server::HealthInfo H1;
  ASSERT_TRUE(C.health(H1, Err)) << Err;
  EXPECT_EQ(H1.Generation, H0.Generation + 1);
  // Same sources, same fingerprint: a reload is a generation event, not a
  // cache-key event, so the warm store stays valid.
  EXPECT_EQ(H1.ModelFpHex, H0.ModelFpHex);

  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(addImm(1), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);

  S.requestShutdown();
  S.wait();
  EXPECT_EQ(S.stats().Reloads, 1u);
}

TEST(FleetReloadTest, BadModelSourceIsRejectedAndOldGenerationServes) {
  TempDir D;
  fs::create_directories(D.Path + "/models");
  server::ServerConfig Cfg = daemonConfig(D, "a.sock");
  Cfg.ModelDir = D.Path + "/models"; // empty now: builtins serve
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Poison the override file, then ask for a reload: the parse failure
  // must reject the reload and leave the serving registry untouched.
  {
    std::ofstream Bad(D.Path + "/models/aarch64.sail");
    Bad << "this is not a sail model\n";
  }
  server::Client C(fleetClientOptions());
  ASSERT_TRUE(C.connect(D.Path + "/a.sock", Err)) << Err;
  std::string RErr;
  EXPECT_FALSE(C.reloadServer(RErr));
  EXPECT_FALSE(RErr.empty());

  server::HealthInfo H;
  ASSERT_TRUE(C.health(H, Err)) << Err;
  EXPECT_EQ(H.Generation, 0u); // the bad reload never took

  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(addImm(2), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);

  S.requestShutdown();
  S.wait();
  EXPECT_EQ(S.stats().Reloads, 0u);
  EXPECT_EQ(S.stats().ReloadFailures, 1u);
}

TEST(FleetReloadTest, ReloadUnderLoadDropsNothing) {
  TempDir D;
  server::ServerConfig Cfg = daemonConfig(D, "a.sock");
  Cfg.Workers = 2;
  Cfg.ExecDelaySeconds = 0.02; // keep jobs in flight across the swaps
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  constexpr unsigned Threads = 4, PerThread = 8, Reloads = 5;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Load;
  for (unsigned T = 0; T < Threads; ++T)
    Load.emplace_back([&, T] {
      server::Client C(fleetClientOptions(100 + T));
      std::string CErr;
      if (!C.connect(D.Path + "/a.sock", CErr)) {
        Failures += PerThread;
        return;
      }
      for (unsigned I = 0; I < PerThread; ++I) {
        server::Client::TraceResult TR;
        if (!C.runTrace(addImm(100 + T * PerThread + I), TR, CErr) || !TR.Ok)
          ++Failures;
      }
    });

  server::Client Reloader(fleetClientOptions(99));
  ASSERT_TRUE(Reloader.connect(D.Path + "/a.sock", Err)) << Err;
  for (unsigned R = 0; R < Reloads; ++R) {
    std::string RErr;
    EXPECT_TRUE(Reloader.reloadServer(RErr)) << RErr;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  for (std::thread &T : Load)
    T.join();

  // The acceptance bar: zero accepted requests dropped across the swaps,
  // and the generation reflects every reload.
  EXPECT_EQ(Failures.load(), 0u);
  server::HealthInfo H;
  ASSERT_TRUE(Reloader.health(H, Err)) << Err;
  EXPECT_EQ(H.Generation, uint64_t(Reloads));

  S.requestShutdown();
  S.wait();
  EXPECT_EQ(S.stats().Reloads, uint64_t(Reloads));
}

//===----------------------------------------------------------------------===//
// Failover.
//===----------------------------------------------------------------------===//

TEST(FleetFailoverTest, RefusedEndpointRotatesImmediately) {
  TempDir D;
  server::Server S(daemonConfig(D, "b.sock"));
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // First endpoint refuses (nothing listens there): the dial walk must
  // rotate past it without burning a backoff sleep or a connect timeout.
  server::Client C(fleetClientOptions());
  Clock::time_point T0 = Clock::now();
  ASSERT_TRUE(
      C.connect(D.Path + "/missing.sock, " + D.Path + "/b.sock", Err))
      << Err;
  double Took = std::chrono::duration<double>(Clock::now() - T0).count();
  EXPECT_LT(Took, 1.5) << "refused endpoint cost a timeout-scale delay";
  EXPECT_EQ(C.activeEndpoint(), D.Path + "/b.sock");
  EXPECT_GE(C.netStats().DialsRefused, 1u);

  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(addImm(3), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);

  S.requestShutdown();
  S.wait();
}

TEST(FleetFailoverTest, SurvivorFinishesStreamBitIdentically) {
  TempDir D;
  auto A = std::make_unique<server::Server>(daemonConfig(D, "a.sock"));
  server::Server B(daemonConfig(D, "b.sock")); // same CacheDir: one store
  std::string Err;
  ASSERT_TRUE(A->start(Err)) << Err;
  ASSERT_TRUE(B.start(Err)) << Err;

  server::Client C(fleetClientOptions());
  ASSERT_TRUE(C.connect(D.Path + "/a.sock," + D.Path + "/b.sock", Err))
      << Err;
  EXPECT_EQ(C.activeEndpoint(), D.Path + "/a.sock");

  std::vector<std::string> FirstRun;
  for (unsigned I = 0; I < 3; ++I) {
    server::Client::TraceResult TR;
    ASSERT_TRUE(C.runTrace(addImm(10 + I), TR, Err)) << Err;
    ASSERT_TRUE(TR.Ok);
    FirstRun.push_back(TR.EntryText);
  }

  // Kill the client's daemon mid-stream (drain + teardown: subsequent
  // requests see a drain shed, then a dead socket).
  A->requestShutdown();
  A->wait();
  A.reset();

  for (unsigned I = 0; I < 3; ++I) {
    server::Client::TraceResult TR;
    ASSERT_TRUE(C.runTrace(addImm(13 + I), TR, Err)) << Err;
    EXPECT_TRUE(TR.Ok);
  }
  EXPECT_EQ(C.activeEndpoint(), D.Path + "/b.sock");
  EXPECT_GE(C.netStats().EndpointRotations, 1u);
  // Satellite contract: the success on the survivor reset the retry
  // backoff streak, so the next hiccup starts from the base delay.
  EXPECT_EQ(C.retryBackoffAttempt(), 0u);

  // The shared store means the survivor re-reads what the dead daemon
  // published — replaying an old key must be bit-identical, not a fresh
  // divergent execution.
  for (unsigned I = 0; I < 3; ++I) {
    server::Client::TraceResult TR;
    ASSERT_TRUE(C.runTrace(addImm(10 + I), TR, Err)) << Err;
    ASSERT_TRUE(TR.Ok);
    EXPECT_EQ(TR.EntryText, FirstRun[I]) << "imm " << 10 + I;
  }
  EXPECT_EQ(B.stats().Executed + B.stats().WarmHits, 6u);

  B.requestShutdown();
  B.wait();
}

TEST(FleetFailoverTest, SharedStoreContentionExecutesEachKeyOnce) {
  TempDir D;
  server::Server A(daemonConfig(D, "a.sock"));
  server::Server B(daemonConfig(D, "b.sock"));
  std::string Err;
  ASSERT_TRUE(A.start(Err)) << Err;
  ASSERT_TRUE(B.start(Err)) << Err;

  constexpr unsigned Keys = 5;
  std::vector<std::string> ViaA(Keys), ViaB(Keys);
  {
    server::Client C(fleetClientOptions(1));
    ASSERT_TRUE(C.connect(D.Path + "/a.sock", Err)) << Err;
    for (unsigned I = 0; I < Keys; ++I) {
      server::Client::TraceResult TR;
      ASSERT_TRUE(C.runTrace(addImm(30 + I), TR, Err)) << Err;
      ASSERT_TRUE(TR.Ok);
      ViaA[I] = TR.EntryText;
    }
  }
  {
    server::Client C(fleetClientOptions(2));
    ASSERT_TRUE(C.connect(D.Path + "/b.sock", Err)) << Err;
    for (unsigned I = 0; I < Keys; ++I) {
      server::Client::TraceResult TR;
      ASSERT_TRUE(C.runTrace(addImm(30 + I), TR, Err)) << Err;
      ASSERT_TRUE(TR.Ok);
      ViaB[I] = TR.EntryText;
    }
  }

  // One store, two daemons: every key executes exactly once fleet-wide
  // (B re-reads A's publishes) and the bytes agree.
  EXPECT_EQ(ViaA, ViaB);
  EXPECT_EQ(A.stats().Executed + B.stats().Executed, uint64_t(Keys));
  EXPECT_EQ(B.stats().WarmHits, uint64_t(Keys));

  A.requestShutdown();
  A.wait();
  B.requestShutdown();
  B.wait();
}

TEST(FleetFailoverTest, LeastLoadedConnectPicksIdleDaemon) {
  TempDir D;
  server::ServerConfig CfgA = daemonConfig(D, "a.sock");
  CfgA.ExecDelaySeconds = 1.5; // A is busy for the whole probe window
  server::Server A(CfgA);
  server::Server B(daemonConfig(D, "b.sock"));
  std::string Err;
  ASSERT_TRUE(A.start(Err)) << Err;
  ASSERT_TRUE(B.start(Err)) << Err;

  // Pin a long job on A...
  std::thread Busy([&] {
    server::Client C(fleetClientOptions(3));
    std::string CErr;
    ASSERT_TRUE(C.connect(D.Path + "/a.sock", CErr)) << CErr;
    server::Client::TraceResult TR;
    ASSERT_TRUE(C.runTrace(addImm(50), TR, CErr)) << CErr;
    EXPECT_TRUE(TR.Ok);
  });
  ASSERT_TRUE(waitFor(5, [&] { return A.healthSnapshot().ActiveJobs > 0; }));

  // ...and a least-loaded connect (list order prefers A) must settle on B.
  server::ClientOptions O = fleetClientOptions(4);
  O.PreferLeastLoaded = true;
  server::Client C(O);
  ASSERT_TRUE(C.connect(D.Path + "/a.sock," + D.Path + "/b.sock", Err))
      << Err;
  EXPECT_EQ(C.activeEndpoint(), D.Path + "/b.sock");

  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(addImm(51), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);
  Busy.join();

  A.requestShutdown();
  A.wait();
  B.requestShutdown();
  B.wait();
}

//===----------------------------------------------------------------------===//
// Disk-fault degraded mode.
//===----------------------------------------------------------------------===//

TEST(FleetDegradedTest, DiskFullEntersCacheOffModeAndSelfHeals) {
  TempDir D;
  support::FaultInjector FI(11);
  FI.setRate(support::FaultSite::DiskFull, 1.0);
  support::FaultInjector::setActive(&FI);

  server::ServerConfig Cfg = daemonConfig(D, "a.sock");
  Cfg.DegradedProbeSeconds = 0.2;
  server::Server S(Cfg);
  std::string Err;
  bool Started = S.start(Err);
  if (!Started) {
    support::FaultInjector::setActive(nullptr);
    FAIL() << Err;
  }

  server::Client C(fleetClientOptions());
  ASSERT_TRUE(C.connect(D.Path + "/a.sock", Err)) << Err;

  // The first fresh execution's publish fails; the daemon must flip into
  // cache-off degraded mode instead of erroring the request.
  server::Client::TraceResult TR;
  ASSERT_TRUE(C.runTrace(addImm(60), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);
  ASSERT_TRUE(waitFor(5, [&] {
    return (S.healthSnapshot().DegradedFlags &
            server::HealthDegradedCacheOff) != 0;
  }));
  server::HealthInfo H = S.healthSnapshot();
  EXPECT_GE(H.PublishFailures, 1u);

  // Degraded, not dead: requests keep being served (from memory and fresh
  // execution), with no per-request error storm.
  ASSERT_TRUE(C.runTrace(addImm(61), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);

  // The device recovers; the self-heal probe must notice and restore disk
  // I/O within a few probe intervals.
  FI.setRate(support::FaultSite::DiskFull, 0.0);
  ASSERT_TRUE(waitFor(10, [&] {
    return S.healthSnapshot().DegradedFlags == 0;
  }));
  EXPECT_GT(S.healthSnapshot().DegradedSeconds, 0.0);

  // Healed means publishing again: a fresh key must land on disk.
  ASSERT_TRUE(C.runTrace(addImm(62), TR, Err)) << Err;
  EXPECT_TRUE(TR.Ok);
  ASSERT_TRUE(waitFor(5, [&] {
    uint64_t Entries = 0;
    std::error_code EC;
    for (fs::recursive_directory_iterator
             It(D.Path + "/cache", fs::directory_options::skip_permission_denied, EC),
         End;
         It != End; It.increment(EC))
      if (!EC && It->path().extension() == ".itc")
        ++Entries;
    return Entries >= 1;
  }));

  S.requestShutdown();
  S.wait();
  support::FaultInjector::setActive(nullptr);
  EXPECT_EQ(S.stats().DegradedEntered, 1u);
  EXPECT_EQ(S.stats().DegradedHealed, 1u);
  EXPECT_GE(S.stats().PublishFailures, 1u);
}
