//===- tests/cache_test.cpp - Trace cache subsystem -----------------------------===//
//
// Covers the cache::* layer end to end: fingerprint stability and
// sensitivity, ExecResult serialization through the ITL printer/parser
// round-trip, LRU bounding and hit/miss/evict counters, in-batch
// deduplication, cross-verifier cache hits, cross-thread determinism of the
// batch driver, on-disk persistence, and the warm-cache behavior of the
// full Fig. 12 case-study suite.
//
//===----------------------------------------------------------------------===//

#include "cache/BatchDriver.h"
#include "cache/Fingerprint.h"
#include "cache/Generations.h"
#include "cache/Journal.h"
#include "cache/Scrub.h"
#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"
#include "models/Models.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace islaris;
using namespace islaris::cache;
using islaris::frontend::Verifier;
using islaris::itl::Reg;

namespace {

isla::Assumptions el1Assumptions() {
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  return A;
}

//===----------------------------------------------------------------------===//
// Fingerprints.
//===----------------------------------------------------------------------===//

TEST(FingerprintTest, HexRoundTripAndDeterminism) {
  Fingerprinter FP;
  FP.str("hello").u64(42).boolean(true);
  Fingerprint A = FP.digest();
  Fingerprinter FP2;
  FP2.str("hello").u64(42).boolean(true);
  EXPECT_EQ(A, FP2.digest());

  std::string Hex = A.toHex();
  EXPECT_EQ(Hex.size(), 32u);
  Fingerprint B;
  ASSERT_TRUE(Fingerprint::fromHex(Hex, B));
  EXPECT_EQ(A, B);
  EXPECT_FALSE(Fingerprint::fromHex("zz", B));

  // Length prefixing: a field boundary shift must change the digest.
  Fingerprinter F3, F4;
  F3.str("ab").str("c");
  F4.str("a").str("bc");
  EXPECT_NE(F3.digest(), F4.digest());
}

TEST(FingerprintTest, TraceKeySensitivity) {
  const sail::Model &M = models::aarch64Model();
  isla::Assumptions A = el1Assumptions();
  isla::ExecOptions Opts;
  namespace e = arch::aarch64::enc;
  isla::OpcodeSpec Op = isla::OpcodeSpec::concrete(e::addImm(0, 0, 1));

  Fingerprint Base = traceCacheKey("aarch64", M, Op, A, Opts);
  EXPECT_EQ(Base, traceCacheKey("aarch64", M, Op, A, Opts));

  // Every key ingredient must matter.
  EXPECT_NE(Base, traceCacheKey("rv64", M, Op, A, Opts));
  isla::OpcodeSpec Op2 = isla::OpcodeSpec::concrete(e::addImm(0, 0, 2));
  EXPECT_NE(Base, traceCacheKey("aarch64", M, Op2, A, Opts));
  isla::OpcodeSpec OpSym =
      isla::OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 21, 10);
  EXPECT_NE(Base, traceCacheKey("aarch64", M, OpSym, A, Opts));
  isla::Assumptions A2 = el1Assumptions();
  A2.assume(Reg("HCR_EL2"), BitVec(64, 0));
  EXPECT_NE(Base, traceCacheKey("aarch64", M, Op, A2, Opts));
  isla::ExecOptions Opts2;
  Opts2.SinksOnly = false;
  EXPECT_NE(Base, traceCacheKey("aarch64", M, Op, A, Opts2));

  // Structurally equal constraint closures key equal; different predicates
  // key differently.
  auto mkConstraint = [](uint64_t Bits) {
    isla::Assumptions C;
    C.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
    C.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
    C.constrain(Reg("SPSR_EL2"),
                [Bits](smt::TermBuilder &TB, const smt::Term *V) {
                  return TB.eqTerm(V, TB.constBV(64, Bits));
                });
    return C;
  };
  isla::Assumptions C1 = mkConstraint(5), C1b = mkConstraint(5),
                    C2 = mkConstraint(9);
  EXPECT_EQ(traceCacheKey("aarch64", M, Op, C1, Opts),
            traceCacheKey("aarch64", M, Op, C1b, Opts));
  EXPECT_NE(traceCacheKey("aarch64", M, Op, C1, Opts),
            traceCacheKey("aarch64", M, Op, C2, Opts));
}

//===----------------------------------------------------------------------===//
// Serialization round-trips.
//===----------------------------------------------------------------------===//

TEST(TraceCacheTest, EncodeDecodeRoundTripsSymbolicOpcode) {
  const sail::Model &M = models::aarch64Model();
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  namespace e = arch::aarch64::enc;
  // Partially symbolic immediate (the pKVM relocation pattern): the result
  // carries OpcodeVars that must survive serialization by name.
  isla::OpcodeSpec Op =
      isla::OpcodeSpec::symbolicField(e::movz(0, 0), 20, 5);
  isla::ExecResult R = Ex.run(Op, el1Assumptions(), isla::ExecOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_FALSE(R.OpcodeVars.empty());

  CacheEntry E = TraceCache::encode(R);
  EXPECT_EQ(E.TraceText, R.Trace.toString());
  ASSERT_EQ(E.OpcodeVars.size(), R.OpcodeVars.size());

  smt::TermBuilder TB2;
  isla::ExecResult D;
  std::string Err;
  ASSERT_TRUE(TraceCache::decode(E, TB2, D, Err)) << Err;
  EXPECT_TRUE(D.Ok);
  EXPECT_EQ(D.Trace.toString(), R.Trace.toString());
  ASSERT_EQ(D.OpcodeVars.size(), R.OpcodeVars.size());
  for (size_t I = 0; I < D.OpcodeVars.size(); ++I) {
    EXPECT_EQ(D.OpcodeVars[I]->varName(), R.OpcodeVars[I]->varName());
    EXPECT_EQ(D.OpcodeVars[I]->width(), R.OpcodeVars[I]->width());
  }
  EXPECT_EQ(D.Stats.Events, R.Stats.Events);
  EXPECT_EQ(D.Stats.Paths, R.Stats.Paths);
}

TEST(TraceCacheTest, EntryFileFormatRoundTrips) {
  const sail::Model &M = models::aarch64Model();
  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  namespace e = arch::aarch64::enc;
  isla::OpcodeSpec Op = isla::OpcodeSpec::symbolicField(e::movz(3, 0), 20, 5);
  isla::ExecResult R = Ex.run(Op, el1Assumptions(), isla::ExecOptions());
  ASSERT_TRUE(R.Ok) << R.Error;

  Fingerprint K = traceCacheKey("aarch64", M, Op, el1Assumptions(),
                                isla::ExecOptions());
  CacheEntry E = TraceCache::encode(R);
  std::string Text = TraceCache::serializeEntry(K, E);

  CacheEntry E2;
  std::string Err;
  ASSERT_TRUE(TraceCache::parseEntry(Text, K, E2, Err)) << Err;
  EXPECT_EQ(E2.TraceText, E.TraceText); // byte-identical, not just similar
  EXPECT_EQ(E2.OpcodeVars, E.OpcodeVars);
  EXPECT_EQ(E2.Stats.Events, E.Stats.Events);
  EXPECT_EQ(E2.Stats.SolverQueries, E.Stats.SolverQueries);

  // A mismatched key or mangled header is rejected, not misattributed.
  Fingerprint Other = K;
  Other.Lo ^= 1;
  EXPECT_FALSE(TraceCache::parseEntry(Text, Other, E2, Err));
  EXPECT_FALSE(TraceCache::parseEntry("(bogus)", K, E2, Err));
  EXPECT_FALSE(TraceCache::parseEntry(Text.substr(0, 40), K, E2, Err));
}

//===----------------------------------------------------------------------===//
// LRU bounding and counters.
//===----------------------------------------------------------------------===//

TEST(TraceCacheTest, LruEvictionAndCounters) {
  TraceCacheConfig Cfg;
  Cfg.MaxEntries = 2;
  TraceCache C(Cfg);

  auto key = [](uint64_t N) {
    Fingerprint F;
    F.Hi = N;
    F.Lo = ~N;
    return F;
  };
  CacheEntry E;
  E.TraceText = "(trace)";

  C.insert(key(1), E);
  C.insert(key(2), E);
  EXPECT_TRUE(C.lookup(key(1)).has_value()); // 1 becomes most recent
  C.insert(key(3), E);                       // evicts 2, the LRU entry
  EXPECT_EQ(C.size(), 2u);
  EXPECT_FALSE(C.lookup(key(2)).has_value());
  EXPECT_TRUE(C.lookup(key(1)).has_value());
  EXPECT_TRUE(C.lookup(key(3)).has_value());

  CacheStats St = C.stats();
  EXPECT_EQ(St.Insertions, 3u);
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(St.Hits, 3u);
  EXPECT_EQ(St.Misses, 1u);

  C.clearMemory();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.stats().Insertions, 3u); // counters survive a clear
}

//===----------------------------------------------------------------------===//
// Verifier integration: dedup, cache hits, determinism.
//===----------------------------------------------------------------------===//

/// A straight-line program whose four middle instructions are the same
/// opcode (a memcpy-loop-body shape): with dedup, one execution serves all.
std::map<uint64_t, uint32_t> repeatedOpcodeProgram() {
  namespace e = arch::aarch64::enc;
  return {{0x1000, e::addImm(0, 0, 1)}, {0x1004, e::addImm(0, 0, 1)},
          {0x1008, e::addImm(0, 0, 1)}, {0x100c, e::addImm(0, 0, 1)},
          {0x1010, e::ret()}};
}

void setupVerifier(Verifier &V) {
  V.addCode(repeatedOpcodeProgram());
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
}

std::map<uint64_t, std::string> traceTexts(const Verifier &V) {
  std::map<uint64_t, std::string> Out;
  for (const auto &[Addr, T] : V.instrMap())
    Out[Addr] = T->toString();
  return Out;
}

TEST(VerifierCacheTest, DedupsIdenticalWorkWithoutACache) {
  Verifier V(frontend::aarch64());
  ASSERT_EQ(V.traceCache(), nullptr);
  setupVerifier(V);
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  EXPECT_EQ(V.genStats().Instructions, 5u);
  EXPECT_EQ(V.genStats().Executed, 2u); // addImm once, ret once
  EXPECT_EQ(V.genStats().Deduped, 3u);
  EXPECT_EQ(V.genStats().CacheHits, 0u);
  // Deduplicated instructions materialize byte-identical traces.
  auto Texts = traceTexts(V);
  EXPECT_EQ(Texts.at(0x1000), Texts.at(0x1004));
  EXPECT_EQ(Texts.at(0x1000), Texts.at(0x100c));
  EXPECT_NE(Texts.at(0x1000), Texts.at(0x1010));
}

TEST(VerifierCacheTest, PerAddressAssumptionsDefeatDedup) {
  // Same opcode under different assumptions must NOT dedup.
  namespace e = arch::aarch64::enc;
  Verifier V(frontend::aarch64());
  V.addCode({{0x1000, e::addImm(0, 0, 1)}, {0x1004, e::addImm(0, 0, 1)}});
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  V.at(0x1004)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  EXPECT_EQ(V.genStats().Executed, 2u);
  EXPECT_EQ(V.genStats().Deduped, 0u);
}

TEST(VerifierCacheTest, WarmCacheServesASecondVerifier) {
  TraceCache C;
  std::string Err;

  Verifier V1(frontend::aarch64());
  V1.setTraceCache(&C);
  setupVerifier(V1);
  ASSERT_TRUE(V1.generateTraces(Err)) << Err;
  EXPECT_EQ(V1.genStats().Executed, 2u);
  EXPECT_EQ(C.size(), 2u);

  Verifier V2(frontend::aarch64());
  V2.setTraceCache(&C);
  setupVerifier(V2);
  ASSERT_TRUE(V2.generateTraces(Err)) << Err;
  EXPECT_EQ(V2.genStats().Executed, 0u);
  EXPECT_EQ(V2.genStats().CacheHits, 5u);
  EXPECT_EQ(V2.genStats().Deduped, 0u);

  // Cached results are byte-identical with fresh ones, and the cached
  // verifier still proves code: its trace events live in its own builder.
  EXPECT_EQ(traceTexts(V1), traceTexts(V2));
  // The driver dedups before consulting the cache: V2's five instructions
  // become two unique keys, so the cache itself sees two lookups.
  EXPECT_EQ(C.stats().Hits, 2u);
  EXPECT_EQ(C.stats().Misses, 2u); // V1's cold run
}

TEST(VerifierCacheTest, ParallelGenerationIsDeterministic) {
  std::string Err;
  Verifier Serial(frontend::aarch64());
  setupVerifier(Serial);
  Serial.setParallelism(1);
  ASSERT_TRUE(Serial.generateTraces(Err)) << Err;

  Verifier Par(frontend::aarch64());
  setupVerifier(Par);
  Par.setParallelism(4);
  ASSERT_TRUE(Par.generateTraces(Err)) << Err;

  EXPECT_EQ(traceTexts(Serial), traceTexts(Par));
  EXPECT_EQ(Par.genStats().Executed, Serial.genStats().Executed);
  EXPECT_EQ(Par.genStats().ItlEvents, Serial.genStats().ItlEvents);
}

TEST(VerifierCacheTest, SymbolicOpcodeVarsSurviveTheCache) {
  // The pKVM pattern: a partially symbolic opcode whose fresh immediate
  // variables are consumed by the spec.  They must resolve after a cache
  // hit exactly as after a fresh run.
  namespace e = arch::aarch64::enc;
  TraceCache C;
  for (int Round = 0; Round < 2; ++Round) {
    Verifier V(frontend::aarch64());
    V.setTraceCache(&C);
    V.addCode({{0x2000, e::movz(0, 0)}});
    V.symbolicAt(0x2000, 20, 5);
    V.defaults()
        .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
        .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
        .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
    std::string Err;
    ASSERT_TRUE(V.generateTraces(Err)) << Err;
    const auto &Vars = V.opcodeVarsAt(0x2000);
    ASSERT_EQ(Vars.size(), 1u);
    EXPECT_EQ(Vars[0]->width(), 16u);
    // The variable is the one declared inside this verifier's trace.
    EXPECT_NE(V.traceAt(0x2000)->toString().find(Vars[0]->varName()),
              std::string::npos);
    EXPECT_EQ(V.genStats().CacheHits, Round == 0 ? 0u : 1u);
  }
}

//===----------------------------------------------------------------------===//
// Persistence.
//===----------------------------------------------------------------------===//

struct TempDir {
  std::filesystem::path Path;
  TempDir() {
    Path = std::filesystem::temp_directory_path() /
           ("islaris-cache-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

TEST(TraceCacheTest, PersistsAcrossCacheInstances) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();

  std::string Err;
  {
    TraceCache C(Cfg);
    Verifier V(frontend::aarch64());
    V.setTraceCache(&C);
    setupVerifier(V);
    ASSERT_TRUE(V.generateTraces(Err)) << Err;
    EXPECT_EQ(C.stats().DiskWrites, 2u);
  }

  // A brand-new cache instance (a "second process") over the same
  // directory serves everything from disk.
  TraceCache C2(Cfg);
  Verifier V2(frontend::aarch64());
  V2.setTraceCache(&C2);
  setupVerifier(V2);
  ASSERT_TRUE(V2.generateTraces(Err)) << Err;
  EXPECT_EQ(V2.genStats().Executed, 0u);
  EXPECT_EQ(V2.genStats().CacheHits, 5u);
  EXPECT_EQ(C2.stats().DiskHits, 2u);
  EXPECT_EQ(C2.stats().DiskWrites, 0u);

  // A corrupt entry file degrades to a miss, never to a wrong trace.
  TraceCache C3(Cfg);
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path))
    if (F.is_regular_file())
      std::filesystem::resize_file(F.path(), 10);
  Verifier V3(frontend::aarch64());
  V3.setTraceCache(&C3);
  setupVerifier(V3);
  ASSERT_TRUE(V3.generateTraces(Err)) << Err;
  EXPECT_EQ(V3.genStats().Executed, 2u);
}

// Satellite regression: entries are sharded into 256 fan-out
// subdirectories keyed on the leading fingerprint byte, and a store laid
// out flat by an older version is still read transparently.
TEST(TraceCacheTest, ShardedLayoutAndLegacyReadThrough) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();

  // The generation registry and its manifests live alongside the entries
  // but are not entries; the layout assertions below apply only to entry
  // files.
  auto IsBookkeeping = [](const std::filesystem::path &P) {
    return P.filename() == "generations.txt" ||
           P.parent_path().filename() == "manifests";
  };

  std::string Err;
  {
    TraceCache C(Cfg);
    Verifier V(frontend::aarch64());
    V.setTraceCache(&C);
    setupVerifier(V);
    ASSERT_TRUE(V.generateTraces(Err)) << Err;
    EXPECT_EQ(C.stats().DiskWrites, 2u);
  }

  // Every entry file sits one level deep, in a subdirectory named by the
  // first two hex characters of its own fingerprint.
  unsigned Files = 0;
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path)) {
    if (!F.is_regular_file() || IsBookkeeping(F.path()))
      continue;
    ++Files;
    std::string Name = F.path().filename().string();
    std::string Shard = F.path().parent_path().filename().string();
    EXPECT_EQ(Shard.size(), 2u);
    EXPECT_EQ(Name.substr(0, 2), Shard);
  }
  EXPECT_EQ(Files, 2u);

  // Flatten the store into the legacy layout; a fresh instance must still
  // serve every entry from disk.
  std::vector<std::filesystem::path> Entries;
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path))
    if (F.is_regular_file() && !IsBookkeeping(F.path()))
      Entries.push_back(F.path());
  for (const auto &P : Entries)
    std::filesystem::rename(P, Tmp.Path / P.filename());
  TraceCache C2(Cfg);
  Verifier V2(frontend::aarch64());
  V2.setTraceCache(&C2);
  setupVerifier(V2);
  ASSERT_TRUE(V2.generateTraces(Err)) << Err;
  EXPECT_EQ(V2.genStats().Executed, 0u);
  EXPECT_EQ(C2.stats().DiskHits, 2u);
  // First-writer-wins extends across layouts: the legacy files already
  // hold these entries, so nothing is rewritten into the shards.
  EXPECT_EQ(C2.stats().DiskWrites, 0u);
}

TEST(TraceCacheTest, CacheDirResolution) {
  ::setenv("ISLARIS_CACHE_DIR", "/tmp/islaris-override", 1);
  EXPECT_EQ(resolveCacheDir(), "/tmp/islaris-override");
  ::setenv("ISLARIS_CACHE_DIR", "", 1);
  EXPECT_EQ(resolveCacheDir(), "build/.trace-cache"); // empty = unset
  ::unsetenv("ISLARIS_CACHE_DIR");
  EXPECT_EQ(resolveCacheDir(), "build/.trace-cache");
}

//===----------------------------------------------------------------------===//
// The Fig. 12 suite under the cache and the batch driver.
//===----------------------------------------------------------------------===//

TEST(SuiteCacheTest, WarmSuiteRegeneratesNothingAndMatchesCold) {
  // Every case-study trace round-trips through serialize -> parse on every
  // materialization (decode fails loudly if the ITL grammar were
  // inadequate), so a green warm run IS the round-trip check for all nine
  // Fig. 12 rows.
  TraceCache C;
  frontend::SuiteOptions Opts;
  Opts.Threads = 1;
  Opts.Cache = &C;
  std::vector<frontend::CaseResult> Cold =
      frontend::runAllCaseStudies(Opts);
  std::vector<frontend::CaseResult> Warm =
      frontend::runAllCaseStudies(Opts);

  ASSERT_EQ(Cold.size(), Warm.size());
  unsigned WarmExecuted = 0;
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_TRUE(Cold[I].Ok) << Cold[I].Name << ": " << Cold[I].Error;
    EXPECT_TRUE(Warm[I].Ok) << Warm[I].Name << ": " << Warm[I].Error;
    EXPECT_EQ(Warm[I].ItlEvents, Cold[I].ItlEvents) << Warm[I].Name;
    EXPECT_EQ(Warm[I].AsmInstrs, Cold[I].AsmInstrs) << Warm[I].Name;
    EXPECT_EQ(Warm[I].CacheHits, Warm[I].AsmInstrs) << Warm[I].Name;
    WarmExecuted += Warm[I].TracesExecuted;
  }
  EXPECT_EQ(WarmExecuted, 0u); // 100% hit rate on the warm run
}

//===----------------------------------------------------------------------===//
// Side-condition solver store.
//===----------------------------------------------------------------------===//

TEST(SideCondTest, EntrySerializationRoundTrips) {
  smt::SolverCache::CachedResult R;
  R.Sat = true;
  R.Model.emplace_back("b", 0u, BitVec(1, 1));   // boolean (width 0)
  R.Model.emplace_back("x", 16u, BitVec(16, 7)); // bitvector
  Fingerprint K = Fingerprinter().str("k").digest();

  std::string Text = SideCondStore::serializeEntry(K, R);
  smt::SolverCache::CachedResult Out;
  std::string Err;
  ASSERT_TRUE(SideCondStore::parseEntry(Text, K, Out, Err)) << Err;
  EXPECT_TRUE(Out.Sat);
  ASSERT_EQ(Out.Model.size(), 2u);
  EXPECT_EQ(std::get<0>(Out.Model[0]), "b");
  EXPECT_EQ(std::get<1>(Out.Model[0]), 0u);
  EXPECT_EQ(std::get<2>(Out.Model[0]).toUInt64(), 1u);
  EXPECT_EQ(std::get<0>(Out.Model[1]), "x");
  EXPECT_EQ(std::get<2>(Out.Model[1]).toUInt64(), 7u);

  // Key mismatch and truncation degrade to parse failures (misses).
  Fingerprint K2 = Fingerprinter().str("other").digest();
  EXPECT_FALSE(SideCondStore::parseEntry(Text, K2, Out, Err));
  EXPECT_FALSE(
      SideCondStore::parseEntry(Text.substr(0, Text.size() / 2), K, Out,
                                Err));

  smt::SolverCache::CachedResult U; // unsat entries carry no model
  std::string UText = SideCondStore::serializeEntry(K, U);
  ASSERT_TRUE(SideCondStore::parseEntry(UText, K, Out, Err)) << Err;
  EXPECT_FALSE(Out.Sat);
  EXPECT_TRUE(Out.Model.empty());
}

TEST(SideCondTest, ModelSaltSeparatesKeys) {
  SideCondConfig A, B;
  B.ModelSalt = Fingerprinter().str("other-model").digest();
  SideCondStore SA(A), SB(B);
  EXPECT_NE(SA.key("(goal-closure 1)"), SB.key("(goal-closure 1)"));
  EXPECT_EQ(SA.key("(goal-closure 1)"), SA.key("(goal-closure 1)"));
}

TEST(SideCondTest, PersistsAcrossStoreInstances) {
  TempDir Tmp;
  SideCondConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();

  // Populate through a real solver.
  {
    SideCondStore Store(Cfg);
    smt::TermBuilder TB;
    smt::Solver S(TB);
    S.setCache(&Store);
    const smt::Term *X = TB.freshVar(smt::Sort::bitvec(16), "x");
    S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)),
                           TB.constBV(16, 10)));
    ASSERT_EQ(S.check(), smt::Result::Sat);
    EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 7u);
    EXPECT_EQ(Store.stats().DiskWrites, 1u);
  }

  // A brand-new store instance (a "second process") over the same
  // directory answers from disk: no SAT call, identical model.
  SideCondStore Store2(Cfg);
  smt::TermBuilder TB;
  smt::Solver S(TB);
  S.setCache(&Store2);
  const smt::Term *X = TB.freshVar(smt::Sort::bitvec(16), "x");
  S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)),
                         TB.constBV(16, 10)));
  ASSERT_EQ(S.check(), smt::Result::Sat);
  EXPECT_EQ(S.stats().NumSatCalls, 0u);
  EXPECT_EQ(S.stats().NumStoreHits, 1u);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 7u);
  EXPECT_EQ(Store2.stats().DiskHits, 1u);

  // Corrupt entries degrade to misses, never to wrong verdicts.
  SideCondStore Store3(Cfg);
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path))
    if (F.is_regular_file())
      std::filesystem::resize_file(F.path(), 8);
  smt::TermBuilder TB2;
  smt::Solver S2(TB2);
  S2.setCache(&Store3);
  const smt::Term *Y = TB2.freshVar(smt::Sort::bitvec(16), "x");
  S2.assertTerm(TB2.eqTerm(TB2.bvAdd(Y, TB2.constBV(16, 3)),
                           TB2.constBV(16, 10)));
  ASSERT_EQ(S2.check(), smt::Result::Sat);
  EXPECT_EQ(S2.stats().NumSatCalls, 1u);
  EXPECT_EQ(Store3.stats().Misses, 1u);
}

// Satellite regression: side-condition entries use the same 256-way
// sharded layout as the trace cache and read legacy flat stores through.
TEST(SideCondTest, ShardedLayoutAndLegacyReadThrough) {
  TempDir Tmp;
  SideCondConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();

  {
    SideCondStore Store(Cfg);
    smt::TermBuilder TB;
    smt::Solver S(TB);
    S.setCache(&Store);
    const smt::Term *X = TB.freshVar(smt::Sort::bitvec(16), "x");
    S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)),
                           TB.constBV(16, 10)));
    ASSERT_EQ(S.check(), smt::Result::Sat);
    EXPECT_EQ(Store.stats().DiskWrites, 1u);
  }

  // The entry landed in a two-hex-character shard subdirectory matching
  // its own fingerprint prefix; then flatten it to the legacy layout and
  // check a fresh store still answers from disk.
  std::vector<std::filesystem::path> Entries;
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path))
    if (F.is_regular_file())
      Entries.push_back(F.path());
  for (const auto &P : Entries) {
    std::string Name = P.filename().string();
    std::string Shard = P.parent_path().filename().string();
    EXPECT_EQ(Shard.size(), 2u);
    EXPECT_EQ(Name.substr(0, 2), Shard);
    std::filesystem::rename(P, Tmp.Path / Name);
  }
  SideCondStore Store2(Cfg);
  smt::TermBuilder TB;
  smt::Solver S(TB);
  S.setCache(&Store2);
  const smt::Term *X = TB.freshVar(smt::Sort::bitvec(16), "x");
  S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)),
                         TB.constBV(16, 10)));
  ASSERT_EQ(S.check(), smt::Result::Sat);
  EXPECT_EQ(S.stats().NumSatCalls, 0u);
  EXPECT_EQ(Store2.stats().DiskHits, 1u);
}

// Satellite regression: concurrent writers racing on the SAME keys from
// several store/cache instances sharing one directory (the cross-process
// scenario the old address-derived temp suffix could corrupt).  Every
// entry must end up parseable and no ".tmp" litter may survive.
TEST(SideCondTest, ConcurrentWritersWithCollidingKeys) {
  TempDir Tmp;
  constexpr unsigned Writers = 8, Keys = 16;

  // Side-condition entries...
  {
    SideCondConfig Cfg;
    Cfg.Persist = true;
    Cfg.Dir = Tmp.Path.string();
    smt::SolverCache::CachedResult R;
    R.Sat = true;
    R.Model.emplace_back("x", 8u, BitVec(8, 42));
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < Writers; ++W)
      Ts.emplace_back([&] {
        SideCondStore Store(Cfg); // each thread = its own "process"
        for (unsigned K = 0; K < Keys; ++K)
          Store.store("closure-" + std::to_string(K), R);
      });
    for (auto &T : Ts)
      T.join();

    SideCondStore Reader(Cfg);
    for (unsigned K = 0; K < Keys; ++K) {
      auto Hit = Reader.lookup("closure-" + std::to_string(K));
      ASSERT_TRUE(Hit.has_value()) << K;
      EXPECT_TRUE(Hit->Sat);
      ASSERT_EQ(Hit->Model.size(), 1u);
      EXPECT_EQ(std::get<2>(Hit->Model[0]).toUInt64(), 42u);
    }
    EXPECT_EQ(Reader.stats().DiskHits, Keys);
  }

  // ... and trace-cache entries through the shared atomic writer.
  {
    TraceCacheConfig Cfg;
    Cfg.Persist = true;
    Cfg.Dir = (Tmp.Path / "traces").string();
    CacheEntry E;
    E.TraceText = "(trace)";
    E.Stats.Paths = 1;
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < Writers; ++W)
      Ts.emplace_back([&] {
        TraceCache C(Cfg);
        for (unsigned K = 0; K < Keys; ++K)
          C.insert(Fingerprinter().u64(K).digest(), E);
      });
    for (auto &T : Ts)
      T.join();
    TraceCache Reader(Cfg);
    for (unsigned K = 0; K < Keys; ++K)
      EXPECT_TRUE(
          Reader.lookup(Fingerprinter().u64(K).digest()).has_value())
          << K;
  }

  // No orphaned temp files anywhere under the shared directory.
  for (const auto &F :
       std::filesystem::recursive_directory_iterator(Tmp.Path))
    EXPECT_EQ(F.path().string().find(".tmp"), std::string::npos)
        << F.path();
}

TEST(SuiteCacheTest, WarmSideCondStoreEliminatesSatCalls) {
  TempDir Tmp;
  SideCondConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = (Tmp.Path / "sidecond").string();

  frontend::SuiteOptions Opts;
  Opts.Threads = 1;
  std::vector<frontend::CaseResult> Cold, Warm;
  {
    SideCondStore Store(Cfg);
    Opts.SideCond = &Store;
    Cold = frontend::runAllCaseStudies(Opts);
  }
  {
    SideCondStore Store(Cfg); // fresh instance: only the disk is warm
    Opts.SideCond = &Store;
    Warm = frontend::runAllCaseStudies(Opts);
    EXPECT_GT(Store.stats().DiskHits, 0u);
  }

  ASSERT_EQ(Cold.size(), Warm.size());
  uint64_t ColdSat = 0, WarmSat = 0, WarmStoreHits = 0;
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_TRUE(Cold[I].Ok) << Cold[I].Name << ": " << Cold[I].Error;
    EXPECT_TRUE(Warm[I].Ok) << Warm[I].Name << ": " << Warm[I].Error;
    // Verdicts and proof shape must be identical with and without hits.
    EXPECT_EQ(Warm[I].ItlEvents, Cold[I].ItlEvents) << Warm[I].Name;
    EXPECT_EQ(Warm[I].Proof.PathsVerified, Cold[I].Proof.PathsVerified)
        << Warm[I].Name;
    EXPECT_EQ(Warm[I].Proof.SolverQueries, Cold[I].Proof.SolverQueries)
        << Warm[I].Name;
    ColdSat += Cold[I].Proof.SolverSatCalls;
    WarmSat += Warm[I].Proof.SolverSatCalls;
    WarmStoreHits += Warm[I].Proof.SolverStoreHits;
  }
  EXPECT_GT(ColdSat, 0u);
  EXPECT_GT(WarmStoreHits, 0u);
  // The acceptance criterion: at least half of all side-condition SAT
  // calls are answered by the store on a warm rerun.
  EXPECT_LE(WarmSat * 2, ColdSat)
      << "warm=" << WarmSat << " cold=" << ColdSat;
}

//===----------------------------------------------------------------------===//
// Durability envelope.
//===----------------------------------------------------------------------===//

std::string readFileRaw(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void writeFileRaw(const std::filesystem::path &P, const std::string &S) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(S.data(), std::streamsize(S.size()));
}

/// Entry files under \p Root, excluding the quarantine area.
std::vector<std::filesystem::path>
entryFiles(const std::filesystem::path &Root) {
  std::vector<std::filesystem::path> Out;
  if (!std::filesystem::exists(Root))
    return Out;
  for (const auto &F : std::filesystem::recursive_directory_iterator(Root))
    if (F.is_regular_file() &&
        F.path().string().find("quarantine") == std::string::npos)
      Out.push_back(F.path());
  return Out;
}

TEST(EnvelopeTest, WrapUnwrapAndFailureTaxonomy) {
  std::string Payload = "(islaris-trace-cache 1 00ff) body\nwith newline";
  std::string File = wrapDurableEntry(Payload);
  ASSERT_EQ(File.compare(0, 15, "(islaris-entry "), 0);
  std::string Out;
  EXPECT_EQ(unwrapDurableEntry(File, Out), EnvelopeResult::Ok);
  EXPECT_EQ(Out, Payload);

  // Headerless pre-envelope files pass through as Legacy, byte-identical.
  EXPECT_EQ(unwrapDurableEntry(Payload, Out), EnvelopeResult::Legacy);
  EXPECT_EQ(Out, Payload);
  EXPECT_EQ(unwrapDurableEntry("", Out), EnvelopeResult::Empty);

  // Every corruption shape is detected before any parser sees the bytes.
  std::string Flip = File;
  Flip.back() = char(Flip.back() ^ 0x40);
  EXPECT_EQ(unwrapDurableEntry(Flip, Out), EnvelopeResult::Corrupt);
  EXPECT_EQ(unwrapDurableEntry(File.substr(0, File.size() - 1), Out),
            EnvelopeResult::Corrupt); // truncated payload
  EXPECT_EQ(unwrapDurableEntry(File.substr(0, 20), Out),
            EnvelopeResult::Corrupt); // header torn mid-line
  std::string BadVer = File;
  BadVer[15] = '7'; // an unknown-but-well-formed version is NOT guessed at
  EXPECT_EQ(unwrapDurableEntry(BadVer, Out), EnvelopeResult::BadVersion);

  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull); // FNV-1a offset basis
  EXPECT_EQ(fnv1a64("islaris"), fnv1a64("islaris"));
  EXPECT_NE(fnv1a64("islaris"), fnv1a64("islariS"));

  using support::ErrorCode;
  EXPECT_EQ(envelopeErrorCode(EnvelopeResult::Corrupt),
            ErrorCode::ChecksumMismatch);
  EXPECT_EQ(envelopeErrorCode(EnvelopeResult::BadVersion),
            ErrorCode::CacheVersionMismatch);
  EXPECT_EQ(envelopeErrorCode(EnvelopeResult::Empty),
            ErrorCode::CorruptCacheEntry);
}

//===----------------------------------------------------------------------===//
// Corruption matrix: every corruption class, against both stores, must be
// detected, attributed with the right Diag code, and quarantined — never a
// crash, never a wrong hit.
//===----------------------------------------------------------------------===//

struct CorruptionCase {
  const char *What;
  unsigned Kind;
  support::ErrorCode Expect;
};

constexpr CorruptionCase CorruptionMatrix[] = {
    {"truncated payload", 0, support::ErrorCode::ChecksumMismatch},
    {"bit-flipped byte", 1, support::ErrorCode::ChecksumMismatch},
    {"wrong version header", 2, support::ErrorCode::CacheVersionMismatch},
    {"zero-length file", 3, support::ErrorCode::CorruptCacheEntry},
};

void corruptFile(const std::filesystem::path &P, unsigned Kind) {
  std::string T = readFileRaw(P);
  switch (Kind) {
  case 0:
    writeFileRaw(P, T.substr(0, T.size() - 5));
    break;
  case 1: {
    size_t NL = T.find('\n');
    size_t At = NL + 1 + (T.size() - NL) / 2;
    T[At] = char(T[At] ^ 0x01);
    writeFileRaw(P, T);
    break;
  }
  case 2:
    T[15] = '9'; // "(islaris-entry 9 ..." — valid shape, unknown version
    writeFileRaw(P, T);
    break;
  case 3:
    writeFileRaw(P, "");
    break;
  }
}

TEST(CorruptionMatrixTest, TraceStoreDetectsAttributesAndQuarantines) {
  for (const CorruptionCase &TC : CorruptionMatrix) {
    TempDir Tmp;
    TraceCacheConfig Cfg;
    Cfg.Persist = true;
    Cfg.Dir = Tmp.Path.string();
    Fingerprint K = Fingerprinter().str("matrix-key").digest();
    CacheEntry E;
    E.TraceText = "(trace)";
    E.Stats.Paths = 1;
    {
      TraceCache C(Cfg);
      C.insert(K, E);
    }
    auto Files = entryFiles(Tmp.Path);
    ASSERT_EQ(Files.size(), 1u) << TC.What;
    corruptFile(Files[0], TC.Kind);

    TraceCache C2(Cfg);
    EXPECT_FALSE(C2.lookup(K).has_value()) << TC.What; // miss, never garbage
    CacheStats St = C2.stats();
    EXPECT_EQ(St.Misses, 1u) << TC.What;
    EXPECT_EQ(St.CorruptRemoved, 1u) << TC.What;
    EXPECT_EQ(St.Quarantined, 1u) << TC.What;
    auto Ds = C2.drainDiags();
    ASSERT_EQ(Ds.size(), 1u) << TC.What;
    EXPECT_EQ(Ds[0].Code, TC.Expect) << TC.What;
    EXPECT_TRUE(support::isInfrastructureError(Ds[0].Code)) << TC.What;
    EXPECT_TRUE(C2.drainDiags().empty()) << TC.What; // drain clears

    // The corpse moved under quarantine/ and the entry path is free, so the
    // next publish self-repairs the store.
    EXPECT_FALSE(std::filesystem::exists(Files[0])) << TC.What;
    EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "quarantine" /
                                        Files[0].filename()))
        << TC.What;
    C2.insert(K, E);
    TraceCache C3(Cfg);
    auto Hit = C3.lookup(K);
    ASSERT_TRUE(Hit.has_value()) << TC.What;
    EXPECT_EQ(Hit->TraceText, E.TraceText) << TC.What;
  }
}

TEST(CorruptionMatrixTest, SideCondStoreDetectsAttributesAndQuarantines) {
  for (const CorruptionCase &TC : CorruptionMatrix) {
    TempDir Tmp;
    SideCondConfig Cfg;
    Cfg.Persist = true;
    Cfg.Dir = Tmp.Path.string();
    smt::SolverCache::CachedResult R;
    R.Sat = true;
    R.Model.emplace_back("x", 8u, BitVec(8, 42));
    {
      SideCondStore S(Cfg);
      S.store("goal-closure", R);
    }
    auto Files = entryFiles(Tmp.Path);
    ASSERT_EQ(Files.size(), 1u) << TC.What;
    corruptFile(Files[0], TC.Kind);

    SideCondStore S2(Cfg);
    EXPECT_FALSE(S2.lookup("goal-closure").has_value()) << TC.What;
    SideCondStats St = S2.stats();
    EXPECT_EQ(St.Misses, 1u) << TC.What;
    EXPECT_EQ(St.CorruptRemoved, 1u) << TC.What;
    EXPECT_EQ(St.Quarantined, 1u) << TC.What;
    auto Ds = S2.drainDiags();
    ASSERT_EQ(Ds.size(), 1u) << TC.What;
    EXPECT_EQ(Ds[0].Code, TC.Expect) << TC.What;
    EXPECT_FALSE(std::filesystem::exists(Files[0])) << TC.What;
    EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "quarantine" /
                                        Files[0].filename()))
        << TC.What;

    // Self-repair: republish, and a fresh instance serves the real verdict.
    S2.store("goal-closure", R);
    SideCondStore S3(Cfg);
    auto Hit = S3.lookup("goal-closure");
    ASSERT_TRUE(Hit.has_value()) << TC.What;
    EXPECT_TRUE(Hit->Sat) << TC.What;
    ASSERT_EQ(Hit->Model.size(), 1u) << TC.What;
    EXPECT_EQ(std::get<2>(Hit->Model[0]).toUInt64(), 42u) << TC.What;
  }
}

// Hostile numbers behind a VALID checksum: the envelope only protects
// against accidental corruption, so a hand-written or fuzzed entry can
// carry non-numeric, negative, or 2^64-scale atoms in any numeric field.
// These used to flow into std::stoul and throw straight through lookup()
// (crashing the caller — in the daemon, a worker thread); every one must
// instead be a parse error -> attributed miss + quarantine.

constexpr const char *HostileNumbers[] = {
    "abc",                  // non-numeric
    "-1",                   // negative
    "18446744073709551616", // 2^64: out_of_range for any 64-bit parse
    "4294967296",           // 2^32: overflows the unsigned stats fields
    "0x20",                 // digits only; radix prefixes are not numbers
};

/// Rewrites the single entry under \p Root by applying \p Mutate to its
/// (checksum-verified) payload and re-wrapping, so the tampered file still
/// passes the envelope — only the semantic parser can catch it.
void rewriteEntryPayload(
    const std::filesystem::path &Root,
    const std::function<void(std::string &)> &Mutate) {
  auto Files = entryFiles(Root);
  ASSERT_EQ(Files.size(), 1u);
  std::string Payload;
  ASSERT_EQ(unwrapDurableEntry(readFileRaw(Files[0]), Payload),
            EnvelopeResult::Ok);
  Mutate(Payload);
  writeFileRaw(Files[0], wrapDurableEntry(Payload));
}

TEST(CorruptionMatrixTest, TraceStoreHostileNumbersMissNeverThrow) {
  for (const char *H : HostileNumbers) {
    for (bool InStats : {true, false}) {
      TempDir Tmp;
      TraceCacheConfig Cfg;
      Cfg.Persist = true;
      Cfg.Dir = Tmp.Path.string();
      Fingerprint K = Fingerprinter().str("hostile-num-key").digest();
      CacheEntry E;
      E.TraceText = "(trace)";
      E.OpcodeVars.emplace_back("v0", 32u);
      E.Stats.Paths = 7;
      E.Stats.PrunedBranches = 3;
      E.Stats.SolverQueries = 11;
      E.Stats.Events = 19;
      {
        TraceCache C(Cfg);
        C.insert(K, E);
      }
      rewriteEntryPayload(Tmp.Path, [&](std::string &P) {
        std::string From = InStats ? "(stats 7" : "(|v0| 32)";
        std::string To = InStats ? std::string("(stats ") + H
                                 : std::string("(|v0| ") + H + ")";
        size_t At = P.find(From);
        ASSERT_NE(At, std::string::npos);
        P.replace(At, From.size(), To);
      });

      TraceCache C2(Cfg);
      // The pre-fix code threw std::invalid_argument / out_of_range here.
      EXPECT_FALSE(C2.lookup(K).has_value()) << H;
      EXPECT_EQ(C2.stats().Quarantined, 1u) << H;
      auto Ds = C2.drainDiags();
      ASSERT_EQ(Ds.size(), 1u) << H;
      EXPECT_EQ(Ds[0].Code, support::ErrorCode::CorruptCacheEntry) << H;
      // The diagnostic names the offending atom, so a quarantined corpse
      // is attributable without re-reading it.
      EXPECT_NE(Ds[0].Message.find(H), std::string::npos) << Ds[0].Message;
    }
  }
}

TEST(CorruptionMatrixTest, SideCondStoreHostileWidthsMissNeverThrow) {
  for (const char *H : HostileNumbers) {
    TempDir Tmp;
    SideCondConfig Cfg;
    Cfg.Persist = true;
    Cfg.Dir = Tmp.Path.string();
    smt::SolverCache::CachedResult R;
    R.Sat = true;
    R.Model.emplace_back("x", 8u, BitVec(8, 42));
    {
      SideCondStore S(Cfg);
      S.store("hostile-width-goal", R);
    }
    rewriteEntryPayload(Tmp.Path, [&](std::string &P) {
      size_t At = P.find("(|x| 8 ");
      ASSERT_NE(At, std::string::npos);
      P.replace(At, 7, std::string("(|x| ") + H + " ");
    });

    SideCondStore S2(Cfg);
    EXPECT_FALSE(S2.lookup("hostile-width-goal").has_value()) << H;
    EXPECT_EQ(S2.stats().Quarantined, 1u) << H;
    auto Ds = S2.drainDiags();
    ASSERT_EQ(Ds.size(), 1u) << H;
    EXPECT_EQ(Ds[0].Code, support::ErrorCode::CorruptCacheEntry) << H;
  }
}

TEST(CorruptionMatrixTest, StaleTempFilesNeverServeReadsAndScrubReaps) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Fingerprint K = Fingerprinter().str("live-entry").digest();
  CacheEntry E;
  E.TraceText = "(trace)";
  {
    TraceCache C(Cfg);
    C.insert(K, E);
  }
  auto Files = entryFiles(Tmp.Path);
  ASSERT_EQ(Files.size(), 1u);
  // A crash between create and rename leaves "<entry>.tmp.<pid>.<n>".
  std::filesystem::path Stale = Files[0];
  Stale += ".tmp.12345.0";
  writeFileRaw(Stale, "half-written garbage");

  // Readers never even look at temps: full hit, no diagnostics.
  TraceCache C2(Cfg);
  ASSERT_TRUE(C2.lookup(K).has_value());
  EXPECT_EQ(C2.stats().CorruptRemoved, 0u);
  EXPECT_TRUE(C2.drainDiags().empty());

  // Scrub reaps the temp and leaves the live entry alone.
  ScrubOptions O;
  O.Dir = Tmp.Path.string();
  ScrubReport Rep = scrubStore(O);
  EXPECT_EQ(Rep.TempsRemoved, 1u);
  EXPECT_EQ(Rep.OkEntries, 1u);
  EXPECT_EQ(Rep.Quarantined, 0u);
  EXPECT_GT(Rep.BytesReclaimed, 0u);
  EXPECT_FALSE(std::filesystem::exists(Stale));
  EXPECT_TRUE(std::filesystem::exists(Files[0]));
}

//===----------------------------------------------------------------------===//
// Run journal.
//===----------------------------------------------------------------------===//

Fingerprint jkey(const char *S) { return Fingerprinter().str(S).digest(); }

TEST(RunJournalTest, AppendsSurviveReopenAndLastRecordWins) {
  TempDir Tmp;
  std::string Path = (Tmp.Path / "suite.journal").string();
  {
    RunJournal J(Path);
    ASSERT_TRUE(J.open());
    EXPECT_EQ(J.records(), 0u);
    EXPECT_TRUE(J.append(jkey("a"), "row one"));
    EXPECT_TRUE(J.append(jkey("b"), "row two"));
    EXPECT_TRUE(J.append(jkey("a"), "row one (rewrite)"));
    EXPECT_EQ(J.records(), 2u);
  }
  RunJournal J2(Path);
  ASSERT_TRUE(J2.open());
  EXPECT_EQ(J2.records(), 2u);
  EXPECT_EQ(J2.tornBytesDiscarded(), 0u);
  ASSERT_NE(J2.find(jkey("a")), nullptr);
  EXPECT_EQ(*J2.find(jkey("a")), "row one (rewrite)"); // last record wins
  ASSERT_NE(J2.find(jkey("b")), nullptr);
  EXPECT_EQ(*J2.find(jkey("b")), "row two");
  EXPECT_EQ(J2.find(jkey("c")), nullptr);
  EXPECT_TRUE(J2.drainDiags().empty());
}

TEST(RunJournalTest, PayloadsAreBinarySafe) {
  TempDir Tmp;
  std::string Path = (Tmp.Path / "suite.journal").string();
  // A payload that *contains* a well-formed journal record must not confuse
  // the recovery scan: records are length-directed, not delimiter-directed.
  std::string Tricky =
      "line one\n" + RunJournal::encodeRecord(jkey("inner"), "decoy") +
      "(islaris-journal 1 trailing garbage";
  {
    RunJournal J(Path);
    ASSERT_TRUE(J.open());
    EXPECT_TRUE(J.append(jkey("t"), Tricky));
  }
  RunJournal J2(Path);
  ASSERT_TRUE(J2.open());
  EXPECT_EQ(J2.records(), 1u);
  EXPECT_EQ(J2.tornBytesDiscarded(), 0u);
  ASSERT_NE(J2.find(jkey("t")), nullptr);
  EXPECT_EQ(*J2.find(jkey("t")), Tricky);
  EXPECT_EQ(J2.find(jkey("inner")), nullptr);
}

TEST(RunJournalTest, TornTailIsTruncatedAndAppendsContinue) {
  TempDir Tmp;
  std::string Path = (Tmp.Path / "suite.journal").string();
  {
    RunJournal J(Path);
    ASSERT_TRUE(J.open());
    EXPECT_TRUE(J.append(jkey("a"), "alpha"));
    EXPECT_TRUE(J.append(jkey("b"), "beta"));
  }
  // A crash mid-append leaves half a record at the tail.
  std::string Torn = RunJournal::encodeRecord(jkey("c"), "gamma");
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out.write(Torn.data(), std::streamsize(Torn.size() / 2));
  }
  RunJournal J2(Path);
  ASSERT_TRUE(J2.open());
  EXPECT_EQ(J2.records(), 2u); // the two durable records survive
  EXPECT_EQ(J2.tornBytesDiscarded(), Torn.size() / 2);
  auto Ds = J2.drainDiags();
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Code, support::ErrorCode::ChecksumMismatch);
  EXPECT_EQ(Ds[0].Sev, support::Severity::Warning);
  EXPECT_EQ(J2.find(jkey("c")), nullptr); // the torn job just re-runs

  // The truncation restored a clean tail: appends and reopens continue.
  EXPECT_TRUE(J2.append(jkey("c"), "gamma"));
  RunJournal J3(Path);
  ASSERT_TRUE(J3.open());
  EXPECT_EQ(J3.records(), 3u);
  EXPECT_EQ(J3.tornBytesDiscarded(), 0u);
  ASSERT_NE(J3.find(jkey("c")), nullptr);
  EXPECT_EQ(*J3.find(jkey("c")), "gamma");
}

TEST(RunJournalTest, UnopenablePathFailsCleanly) {
  TempDir Tmp;
  std::filesystem::create_directories(Tmp.Path);
  std::filesystem::path Blocker = Tmp.Path / "blocker";
  writeFileRaw(Blocker, "a regular file where a directory must go");
  RunJournal J((Blocker / "suite.journal").string());
  EXPECT_FALSE(J.open());
  EXPECT_FALSE(J.append(jkey("a"), "row")); // disabled, not crashed
  auto Ds = J.drainDiags();
  ASSERT_GE(Ds.size(), 1u);
  EXPECT_EQ(Ds.back().Code, support::ErrorCode::IoError);
}

//===----------------------------------------------------------------------===//
// Scrub and compaction.
//===----------------------------------------------------------------------===//

TEST(ScrubTest, MigratesLegacyFormatAndPlacementIntoShards) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Fingerprint K = Fingerprinter().str("legacy-entry").digest();
  CacheEntry E;
  E.TraceText = "(trace)";
  {
    TraceCache C(Cfg);
    C.insert(K, E);
  }
  auto Files = entryFiles(Tmp.Path);
  ASSERT_EQ(Files.size(), 1u);
  std::string Hex = K.toHex();

  // Regress the entry to what an old version would have left: headerless
  // payload, flat at the store root.
  std::string Payload;
  ASSERT_EQ(unwrapDurableEntry(readFileRaw(Files[0]), Payload),
            EnvelopeResult::Ok);
  std::filesystem::remove(Files[0]);
  std::filesystem::path Flat = Tmp.Path / (Hex + ".itc");
  writeFileRaw(Flat, Payload);

  ScrubOptions O;
  O.Dir = Tmp.Path.string();
  ScrubReport Rep = scrubStore(O);
  EXPECT_EQ(Rep.LegacyMigrated, 1u);
  EXPECT_EQ(Rep.Quarantined, 0u);
  EXPECT_TRUE(Rep.clean());

  // Migrated into its shard, enveloped, payload byte-identical; flat copy
  // retired.
  EXPECT_FALSE(std::filesystem::exists(Flat));
  std::filesystem::path Shard = Tmp.Path / Hex.substr(0, 2) / (Hex + ".itc");
  ASSERT_TRUE(std::filesystem::exists(Shard));
  std::string Out;
  EXPECT_EQ(unwrapDurableEntry(readFileRaw(Shard), Out), EnvelopeResult::Ok);
  EXPECT_EQ(Out, Payload);

  TraceCache C2(Cfg);
  auto Hit = C2.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->TraceText, E.TraceText);

  // A second pass is a fixpoint.
  ScrubReport Rep2 = scrubStore(O);
  EXPECT_EQ(Rep2.LegacyMigrated, 0u);
  EXPECT_EQ(Rep2.OkEntries, 1u);
  EXPECT_TRUE(Rep2.clean());
}

TEST(ScrubTest, QuarantinesCorruptAndMisnamedEntries) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Fingerprint K = Fingerprinter().str("scrub-corrupt").digest();
  CacheEntry E;
  E.TraceText = "(trace)";
  {
    TraceCache C(Cfg);
    C.insert(K, E);
  }
  auto Files = entryFiles(Tmp.Path);
  ASSERT_EQ(Files.size(), 1u);
  corruptFile(Files[0], 1); // bit flip

  // And an entry whose envelope verifies but whose payload does not embed
  // the fingerprint its filename promises (renamed / cross-linked file):
  // serving it would answer the wrong key.
  std::string OtherHex(32, 'f');
  std::filesystem::path Misnamed = Tmp.Path / "ff" / (OtherHex + ".itc");
  std::filesystem::create_directories(Misnamed.parent_path());
  writeFileRaw(Misnamed,
               wrapDurableEntry("(islaris-trace-cache 1 " + K.toHex() +
                                " (opcode-vars) (stats 1 0 0 0))\n(trace)\n"));

  ScrubOptions O;
  O.Dir = Tmp.Path.string();
  ScrubReport Rep = scrubStore(O);
  EXPECT_EQ(Rep.Quarantined, 2u);
  EXPECT_EQ(Rep.OkEntries, 0u);
  EXPECT_FALSE(Rep.clean());
  EXPECT_FALSE(std::filesystem::exists(Files[0]));
  EXPECT_FALSE(std::filesystem::exists(Misnamed));
  EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "quarantine" /
                                      Files[0].filename()));
  EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "quarantine" /
                                      (OtherHex + ".itc")));
}

TEST(ScrubTest, CompactionEvictsLruByMtimeUnderBudget) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  std::vector<std::filesystem::path> Paths;
  uint64_t Total = 0;
  {
    TraceCache C(Cfg);
    auto Now = std::filesystem::file_time_type::clock::now();
    for (int I = 0; I < 4; ++I) {
      Fingerprint K = Fingerprinter().str("evict").u64(uint64_t(I)).digest();
      CacheEntry E;
      E.TraceText = "(trace)";
      C.insert(K, E);
      std::string Hex = K.toHex();
      std::filesystem::path P =
          Tmp.Path / Hex.substr(0, 2) / (Hex + ".itc");
      ASSERT_TRUE(std::filesystem::exists(P)) << I;
      // Entry I was last touched (4 - I) days ago: index 0 is the oldest.
      std::filesystem::last_write_time(P,
                                       Now - std::chrono::hours(24 * (4 - I)));
      Paths.push_back(P);
      Total += std::filesystem::file_size(P);
    }
  }

  ScrubOptions O;
  O.Dir = Tmp.Path.string();
  O.MaxBytes = Total - std::filesystem::file_size(Paths[0]) -
               std::filesystem::file_size(Paths[1]);
  ScrubReport Rep = scrubStore(O);
  EXPECT_EQ(Rep.Evicted, 2u);
  EXPECT_LE(Rep.BytesInUse, O.MaxBytes);
  // Oldest-first: the two stalest entries go, the two freshest stay.
  EXPECT_FALSE(std::filesystem::exists(Paths[0]));
  EXPECT_FALSE(std::filesystem::exists(Paths[1]));
  EXPECT_TRUE(std::filesystem::exists(Paths[2]));
  EXPECT_TRUE(std::filesystem::exists(Paths[3]));
}

TEST(ScrubTest, DryRunReportsWithoutMutating) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Fingerprint Good = Fingerprinter().str("dry-good").digest();
  Fingerprint Bad = Fingerprinter().str("dry-bad").digest();
  CacheEntry E;
  E.TraceText = "(trace)";
  {
    TraceCache C(Cfg);
    C.insert(Good, E);
    C.insert(Bad, E);
  }
  std::string BadHex = Bad.toHex();
  std::filesystem::path BadPath =
      Tmp.Path / BadHex.substr(0, 2) / (BadHex + ".itc");
  corruptFile(BadPath, 1);
  std::filesystem::path Stale = BadPath;
  Stale += ".tmp.999.1";
  writeFileRaw(Stale, "stale");
  // A legacy flat headerless entry to (not) migrate.
  Fingerprint Leg = Fingerprinter().str("dry-legacy").digest();
  std::filesystem::path Flat = Tmp.Path / (Leg.toHex() + ".itc");
  writeFileRaw(Flat, TraceCache::serializeEntry(Leg, E));

  ScrubOptions Dry;
  Dry.Dir = Tmp.Path.string();
  Dry.DryRun = true;
  ScrubReport Rep = scrubStore(Dry);
  EXPECT_EQ(Rep.TempsRemoved, 1u);
  EXPECT_EQ(Rep.Quarantined, 1u);
  EXPECT_EQ(Rep.LegacyMigrated, 1u);
  EXPECT_EQ(Rep.OkEntries, 1u);
  // ...but nothing moved: same corrupt bytes, same temp, same flat file.
  EXPECT_TRUE(std::filesystem::exists(BadPath));
  EXPECT_TRUE(std::filesystem::exists(Stale));
  EXPECT_TRUE(std::filesystem::exists(Flat));
  EXPECT_FALSE(std::filesystem::exists(Tmp.Path / "quarantine"));

  // The wet pass then performs exactly what the dry pass promised.
  Dry.DryRun = false;
  ScrubReport Wet = scrubStore(Dry);
  EXPECT_EQ(Wet.TempsRemoved, 1u);
  EXPECT_EQ(Wet.Quarantined, 1u);
  EXPECT_EQ(Wet.LegacyMigrated, 1u);
  EXPECT_FALSE(std::filesystem::exists(Stale));
  EXPECT_FALSE(std::filesystem::exists(Flat));
  EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "quarantine"));
}

TEST(ScrubTest, NestedSiblingStoreIsNotOursToMigrate) {
  // cachectl scrubs the trace store at the root with the side-condition
  // store nested at <root>/sidecond.  The trace-store pass must not
  // descend into it: its entries would look "misplaced" relative to the
  // trace root and a wet scrub would relocate them — wiping the store.
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Fingerprint K = Fingerprinter().str("nested-trace").digest();
  CacheEntry E;
  E.TraceText = "(trace)";
  {
    TraceCache C(Cfg);
    C.insert(K, E);
  }
  Fingerprint SK = Fingerprinter().str("nested-sidecond").digest();
  std::string SKHex = SK.toHex();
  std::filesystem::path Nested =
      Tmp.Path / "sidecond" / SKHex.substr(0, 2) / (SKHex + ".scc");
  std::filesystem::create_directories(Nested.parent_path());
  writeFileRaw(Nested, wrapDurableEntry("(sidecond-payload " + SKHex + ")"));

  ScrubOptions SO;
  SO.Dir = Tmp.Path.string();
  ScrubReport Rep = scrubStore(SO);
  EXPECT_EQ(Rep.FilesScanned, 1u); // the trace entry only
  EXPECT_EQ(Rep.OkEntries, 1u);
  EXPECT_EQ(Rep.LegacyMigrated, 0u);
  EXPECT_TRUE(Rep.clean());
  EXPECT_TRUE(std::filesystem::exists(Nested)); // untouched, in place

  // Scrubbing the nested store by its own root still sees its entry.
  SO.Dir = (Tmp.Path / "sidecond").string();
  ScrubReport SRep = scrubStore(SO);
  EXPECT_EQ(SRep.OkEntries, 1u);
  EXPECT_TRUE(std::filesystem::exists(Nested));
}

//===----------------------------------------------------------------------===//
// Suite journal: codec round-trip and resumable runs.
//===----------------------------------------------------------------------===//

TEST(SuiteJournalTest, CaseResultCodecRoundTrips) {
  frontend::CaseResult R;
  R.Name = "pkvm handler (with spaces)";
  R.Isa = "aarch64";
  R.Ok = false;
  R.Error = "witness: (parens) 12:34\nsecond line";
  R.D = support::Diag::error(support::ErrorCode::JobException, "suite",
                             R.Error);
  R.AsmInstrs = 17;
  R.ItlEvents = 321;
  R.SpecSize = 9;
  R.Hints = 3;
  R.IslaSeconds = 0.1; // not exactly representable in decimal
  R.TracesExecuted = 5;
  R.CacheHits = 12;
  R.Deduped = 2;
  R.IslaMemoHits = 1;
  R.IslaStoreHits = 4;
  R.IslaStmts = 1234567;
  R.IslaStmtsSkipped = 7;
  R.HelperMemoHits = 8;
  R.Retries = 1;
  R.Quarantined = 1;
  R.Proof.EventsProcessed = 1000;
  R.Proof.PathsVerified = 33;
  R.Proof.Entailments = 44;
  R.Proof.SolverQueries = 55;
  R.Proof.TotalSeconds = 1.0 / 3.0;
  R.Proof.SideCondSeconds = 2.5e-7;

  std::string Enc = frontend::encodeCaseResult(R);
  frontend::CaseResult Out;
  ASSERT_TRUE(frontend::decodeCaseResult(Enc, Out));
  EXPECT_EQ(Out.Name, R.Name);
  EXPECT_EQ(Out.Isa, R.Isa);
  EXPECT_EQ(Out.Ok, R.Ok);
  EXPECT_EQ(Out.Error, R.Error);
  EXPECT_EQ(Out.D.Code, R.D.Code);
  EXPECT_EQ(Out.D.Stage, R.D.Stage);
  EXPECT_EQ(Out.D.Message, R.D.Message);
  EXPECT_EQ(Out.AsmInstrs, R.AsmInstrs);
  EXPECT_EQ(Out.ItlEvents, R.ItlEvents);
  EXPECT_EQ(Out.SpecSize, R.SpecSize);
  EXPECT_EQ(Out.Hints, R.Hints);
  EXPECT_EQ(Out.IslaSeconds, R.IslaSeconds); // hexfloat: bit-exact
  EXPECT_EQ(Out.TracesExecuted, R.TracesExecuted);
  EXPECT_EQ(Out.CacheHits, R.CacheHits);
  EXPECT_EQ(Out.Deduped, R.Deduped);
  EXPECT_EQ(Out.IslaStmts, R.IslaStmts);
  EXPECT_EQ(Out.Retries, R.Retries);
  EXPECT_EQ(Out.Quarantined, R.Quarantined);
  EXPECT_EQ(Out.Proof.EventsProcessed, R.Proof.EventsProcessed);
  EXPECT_EQ(Out.Proof.PathsVerified, R.Proof.PathsVerified);
  EXPECT_EQ(Out.Proof.Entailments, R.Proof.Entailments);
  EXPECT_EQ(Out.Proof.SolverQueries, R.Proof.SolverQueries);
  EXPECT_EQ(Out.Proof.TotalSeconds, R.Proof.TotalSeconds);
  EXPECT_EQ(Out.Proof.SideCondSeconds, R.Proof.SideCondSeconds);

  // Version and truncation failures are detected, not misdecoded.
  std::string BadVer = Enc;
  BadVer[5] = '9'; // "case 9 " — an unknown codec version
  frontend::CaseResult Junk;
  EXPECT_FALSE(frontend::decodeCaseResult(BadVer, Junk));
  EXPECT_FALSE(frontend::decodeCaseResult(Enc.substr(0, Enc.size() / 2),
                                          Junk));
  EXPECT_FALSE(frontend::decodeCaseResult("", Junk));
}

TEST(SuiteJournalTest, ResumedSuiteRestoresRowsBitIdentical) {
  TempDir Tmp;
  frontend::SuiteOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = (Tmp.Path / "suite.journal").string();
  std::vector<frontend::CaseResult> Cold =
      frontend::runAllCaseStudies(Opts);
  for (const frontend::CaseResult &R : Cold)
    EXPECT_FALSE(R.Resumed) << R.Name;
  EXPECT_EQ(frontend::summarize(Cold).JobsResumed, 0u);

  // Same options + Resume: every row restores from the journal — including
  // the recorded timings, bit-for-bit — and no study re-runs.
  Opts.Resume = true;
  std::vector<frontend::CaseResult> Resumed =
      frontend::runAllCaseStudies(Opts);
  ASSERT_EQ(Resumed.size(), Cold.size());
  EXPECT_EQ(frontend::summarize(Resumed).JobsResumed,
            unsigned(Resumed.size()));
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_TRUE(Resumed[I].Resumed) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Name, Cold[I].Name);
    EXPECT_EQ(Resumed[I].Ok, Cold[I].Ok) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Error, Cold[I].Error) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].AsmInstrs, Cold[I].AsmInstrs) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].ItlEvents, Cold[I].ItlEvents) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].SpecSize, Cold[I].SpecSize) << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].IslaSeconds, Cold[I].IslaSeconds)
        << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Proof.PathsVerified, Cold[I].Proof.PathsVerified)
        << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Proof.EventsProcessed,
              Cold[I].Proof.EventsProcessed)
        << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Proof.SolverQueries, Cold[I].Proof.SolverQueries)
        << Resumed[I].Name;
    EXPECT_EQ(Resumed[I].Proof.TotalSeconds, Cold[I].Proof.TotalSeconds)
        << Resumed[I].Name;
  }

  // A result-affecting configuration change keys differently: nothing from
  // the old run may be restored under the new guards.
  frontend::SuiteOptions Other = Opts;
  Other.Limits.InstrSeconds = 3600;
  std::vector<frontend::CaseResult> Fresh =
      frontend::runAllCaseStudies(Other);
  EXPECT_EQ(frontend::summarize(Fresh).JobsResumed, 0u);
  for (const frontend::CaseResult &R : Fresh)
    EXPECT_TRUE(R.Ok) << R.Name << ": " << R.Error;
}

TEST(SuiteCacheTest, ParallelSuiteMatchesSerial) {
  TraceCache C;
  frontend::SuiteOptions Par;
  Par.Threads = 4;
  Par.Cache = &C;
  std::vector<frontend::CaseResult> Rows =
      frontend::runAllCaseStudies(Par);
  std::vector<frontend::CaseResult> Serial =
      frontend::runAllCaseStudies();
  ASSERT_EQ(Rows.size(), Serial.size());
  for (size_t I = 0; I < Rows.size(); ++I) {
    EXPECT_TRUE(Rows[I].Ok) << Rows[I].Name << ": " << Rows[I].Error;
    EXPECT_EQ(Rows[I].Name, Serial[I].Name);
    EXPECT_EQ(Rows[I].ItlEvents, Serial[I].ItlEvents) << Rows[I].Name;
    EXPECT_EQ(Rows[I].Proof.PathsVerified, Serial[I].Proof.PathsVerified)
        << Rows[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// Journal rotation/compaction.
//===----------------------------------------------------------------------===//

TEST(RunJournalTest, ExplicitCompactKeepsLastRecordPerKey) {
  TempDir Tmp;
  std::filesystem::path Path = Tmp.Path / "suite.journal";
  RunJournal J(Path.string());
  ASSERT_TRUE(J.open());
  // A long-lived suite re-appends every key each run: most of the file is
  // dead records.
  for (int Run = 0; Run < 8; ++Run)
    for (const char *K : {"a", "b", "c"})
      ASSERT_TRUE(J.append(jkey(K), std::string(K) + "-run" +
                                        std::to_string(Run)));
  uint64_t Before = J.fileBytes();
  ASSERT_TRUE(J.compact());
  EXPECT_EQ(J.compactions(), 1u);
  EXPECT_LT(J.fileBytes(), Before / 2);
  EXPECT_EQ(J.records(), 3u);
  ASSERT_NE(J.find(jkey("b")), nullptr);
  EXPECT_EQ(*J.find(jkey("b")), "b-run7");

  // Appends continue on the swapped file, and a reopen sees exactly the
  // compacted state plus the new record.
  ASSERT_TRUE(J.append(jkey("d"), "d-post"));
  RunJournal J2(Path.string());
  ASSERT_TRUE(J2.open());
  EXPECT_EQ(J2.records(), 4u);
  EXPECT_EQ(J2.tornBytesDiscarded(), 0u);
  ASSERT_NE(J2.find(jkey("a")), nullptr);
  EXPECT_EQ(*J2.find(jkey("a")), "a-run7");
  ASSERT_NE(J2.find(jkey("d")), nullptr);
  EXPECT_EQ(*J2.find(jkey("d")), "d-post");
}

TEST(RunJournalTest, AutoCompactionTriggersPastThreshold) {
  TempDir Tmp;
  RunJournal J((Tmp.Path / "auto.journal").string());
  ASSERT_TRUE(J.open());
  J.setCompactThreshold(4096);
  // One hot key re-appended far past the threshold: almost all bytes are
  // dead, so rotation must kick in on its own.
  std::string Payload(128, 'x');
  for (int I = 0; I < 200; ++I)
    ASSERT_TRUE(J.append(jkey("hot"), Payload + std::to_string(I)));
  EXPECT_GE(J.compactions(), 1u);
  EXPECT_LT(J.fileBytes(), 4096u);
  EXPECT_EQ(J.records(), 1u);
  ASSERT_NE(J.find(jkey("hot")), nullptr);
  EXPECT_EQ(*J.find(jkey("hot")), Payload + "199");
}

//===----------------------------------------------------------------------===//
// Clean-shutdown markers and scrub-on-open.
//===----------------------------------------------------------------------===//

TEST(ScrubTest, CleanShutdownMarkerIsConsumedAndSkipsScrub) {
  TempDir Tmp;
  std::string Dir = Tmp.Path.string();
  std::filesystem::create_directories(Tmp.Path);
  // A stale writer temp that a scrub would reap.
  writeFileRaw(Tmp.Path / "deadbeef.itc.tmp.1234.1", "torn write");

  ASSERT_TRUE(writeCleanShutdownMarker(Dir));
  ASSERT_TRUE(hasCleanShutdownMarker(Dir));

  // Marker present: the open-path scrub trusts the attestation, consumes
  // the marker, touches nothing.
  QuickScrubReport Clean = scrubOnOpen(Dir);
  EXPECT_TRUE(Clean.WasClean);
  EXPECT_EQ(Clean.TempsRemoved, 0u);
  EXPECT_FALSE(hasCleanShutdownMarker(Dir));
  EXPECT_TRUE(
      std::filesystem::exists(Tmp.Path / "deadbeef.itc.tmp.1234.1"));

  // Marker absent (an unclean shutdown): the same open now scrubs.
  QuickScrubReport Dirty = scrubOnOpen(Dir);
  EXPECT_FALSE(Dirty.WasClean);
  EXPECT_EQ(Dirty.TempsRemoved, 1u);
  EXPECT_FALSE(
      std::filesystem::exists(Tmp.Path / "deadbeef.itc.tmp.1234.1"));
}

TEST(ScrubTest, TraceCacheScrubOnOpenConfigRunsTheProtocol) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  Cfg.ScrubOnOpen = true;
  std::filesystem::create_directories(Tmp.Path);
  writeFileRaw(Tmp.Path / "stale.itc.tmp.99.2", "torn");
  ASSERT_TRUE(writeCleanShutdownMarker(Cfg.Dir));
  {
    TraceCache C(Cfg); // consumes the marker, skips the scrub
  }
  EXPECT_FALSE(hasCleanShutdownMarker(Cfg.Dir));
  EXPECT_TRUE(std::filesystem::exists(Tmp.Path / "stale.itc.tmp.99.2"));
  {
    TraceCache C(Cfg); // no marker now: reaps the stale temp
  }
  EXPECT_FALSE(std::filesystem::exists(Tmp.Path / "stale.itc.tmp.99.2"));
}

//===----------------------------------------------------------------------===//
// Store generations.
//===----------------------------------------------------------------------===//

TEST(GenerationsTest, TouchRecordAndGcRetireOldModels) {
  TempDir Tmp;
  std::string Dir = Tmp.Path.string();
  Fingerprint OldModel = Fingerprinter().str("model-v1").digest();
  Fingerprint NewModel = Fingerprinter().str("model-v2").digest();
  Fingerprint OldKey = Fingerprinter().str("entry-old").digest();
  Fingerprint NewKey = Fingerprinter().str("entry-new").digest();

  auto entryPath = [&](const Fingerprint &K) {
    std::string Hex = K.toHex();
    return Tmp.Path / Hex.substr(0, 2) / (Hex + ".itc");
  };
  std::filesystem::create_directories(entryPath(OldKey).parent_path());
  std::filesystem::create_directories(entryPath(NewKey).parent_path());
  writeFileRaw(entryPath(OldKey), "old-model entry bytes");
  writeFileRaw(entryPath(NewKey), "new-model entry bytes");

  touchGeneration(Dir, OldModel);
  recordEntryGeneration(Dir, OldModel, OldKey);
  touchGeneration(Dir, NewModel);
  recordEntryGeneration(Dir, NewModel, NewKey);

  std::vector<GenerationRecord> Gens = readGenerations(Dir);
  ASSERT_EQ(Gens.size(), 2u);
  EXPECT_EQ(Gens.front().ModelFp, OldModel); // oldest first
  EXPECT_EQ(Gens.back().ModelFp, NewModel);
  EXPECT_LT(Gens.front().Seq, Gens.back().Seq);

  GenerationGcOptions O;
  O.Dir = Dir;
  O.KeepGenerations = 1;

  // Dry run: counts what retirement would remove, deletes nothing.
  O.DryRun = true;
  GenerationGcReport Dry = gcGenerations(O);
  EXPECT_EQ(Dry.Retired, 1u);
  EXPECT_EQ(Dry.EntriesRemoved, 1u);
  EXPECT_TRUE(std::filesystem::exists(entryPath(OldKey)));
  ASSERT_EQ(readGenerations(Dir).size(), 2u);

  // Real pass: the old model's manifest entries go, the new model's stay,
  // and the registry drops the retired row.
  O.DryRun = false;
  GenerationGcReport Rep = gcGenerations(O);
  EXPECT_EQ(Rep.Generations, 2u);
  EXPECT_EQ(Rep.Retired, 1u);
  EXPECT_EQ(Rep.EntriesRemoved, 1u);
  EXPECT_GT(Rep.BytesReclaimed, 0u);
  EXPECT_FALSE(std::filesystem::exists(entryPath(OldKey)));
  EXPECT_TRUE(std::filesystem::exists(entryPath(NewKey)));

  std::vector<GenerationRecord> After = readGenerations(Dir);
  ASSERT_EQ(After.size(), 1u);
  EXPECT_EQ(After.front().ModelFp, NewModel);

  // Idempotent: nothing left to retire.
  GenerationGcReport Again = gcGenerations(O);
  EXPECT_EQ(Again.Retired, 0u);
  EXPECT_EQ(Again.EntriesRemoved, 0u);
}

TEST(GenerationsTest, BatchDriverRecordsGenerationsForFreshEntries) {
  TempDir Tmp;
  TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Tmp.Path.string();
  TraceCache C(Cfg);

  const sail::Model &M = models::aarch64Model();
  isla::Assumptions A;
  namespace e = arch::aarch64::enc;
  cache::TraceJob TJ;
  TJ.Model = &M;
  TJ.ArchName = "aarch64";
  TJ.Op = isla::OpcodeSpec::concrete(e::addImm(0, 0, 7));
  TJ.Assume = &A;
  BatchDriver BD(1);
  auto R = BD.run({TJ}, &C);
  ASSERT_TRUE(R.front().Ok) << R.front().Error;

  // The run registered the model's generation and recorded the entry
  // against it, so a later `cachectl gc` can retire it precisely.
  std::vector<GenerationRecord> Gens = readGenerations(Cfg.Dir);
  ASSERT_EQ(Gens.size(), 1u);
  EXPECT_EQ(Gens.front().ModelFp, fingerprintModel(M));
  std::filesystem::path Manifest =
      Tmp.Path / "manifests" / (fingerprintModel(M).toHex() + ".mf");
  ASSERT_TRUE(std::filesystem::exists(Manifest));
  EXPECT_NE(readFileRaw(Manifest).find(R.front().Key.toHex()),
            std::string::npos);
}

TEST(SideCondTest, ExtractClosureSaltParsesSaltedClosures) {
  Fingerprint Salt = Fingerprinter().str("some-model").digest();
  std::string Closure = "(salt " + Salt.toHex() + ") (assert (= x 1))";
  Fingerprint Out;
  ASSERT_TRUE(extractClosureSalt(Closure, Out));
  EXPECT_EQ(Out, Salt);
  EXPECT_FALSE(extractClosureSalt("(assert (= x 1))", Out));
  EXPECT_FALSE(extractClosureSalt("(salt nothex) (assert)", Out));
  EXPECT_FALSE(extractClosureSalt("", Out));
}

} // namespace
