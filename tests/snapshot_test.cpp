//===- tests/snapshot_test.cpp - Snapshot-forking engine tests -----------------===//
//
// The snapshot engine's contract: traces bit-identical to the replay
// engine (the differential oracle) while executing strictly fewer model
// statements on multi-path instructions, plus the purity classification
// and pure-helper summary memo that ride on it, and the persistent
// side-condition store wired into the executor's pruning queries.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "cache/SideCondCache.h"
#include "frontend/CaseStudies.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "sail/Parser.h"
#include "validation/Validator.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::isla;
using islaris::itl::Reg;

namespace {

Assumptions el1Assumptions() {
  Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  return A;
}

/// Runs \p Op under both engines in fresh builders.  The results' traces
/// point into the builders, so both live here together.
struct EnginePair {
  smt::TermBuilder TBr, TBs;
  ExecResult R, S; ///< Replay / snapshot results.

  EnginePair(const OpcodeSpec &Op, const Assumptions &A) {
    ExecOptions Rep;
    Rep.Engine = ExecEngine::Replay;
    Executor Er(models::aarch64Model(), TBr);
    R = Er.run(Op, A, Rep);

    ExecOptions Snap;
    Snap.Engine = ExecEngine::Snapshot;
    Executor Es(models::aarch64Model(), TBs);
    S = Es.run(Op, A, Snap);
  }
};

/// Bit-identity of the merged trace plus the stats both engines must agree
/// on.  SolverQueries is deliberately NOT compared: replay legitimately
/// re-issues per-path assertion checks that the snapshot engine runs once.
void expectIdentical(const ExecResult &R, const ExecResult &S,
                     const std::string &What) {
  ASSERT_EQ(R.Ok, S.Ok) << What << ": " << R.Error << " / " << S.Error;
  if (!R.Ok)
    return;
  EXPECT_EQ(R.Trace.toString(), S.Trace.toString()) << What;
  EXPECT_EQ(R.Stats.Paths, S.Stats.Paths) << What;
  EXPECT_EQ(R.Stats.Events, S.Stats.Events) << What;
  EXPECT_EQ(R.Stats.PrunedBranches, S.Stats.PrunedBranches) << What;
  ASSERT_EQ(R.OpcodeVars.size(), S.OpcodeVars.size()) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: snapshot vs replay.
//===----------------------------------------------------------------------===//

TEST(SnapshotDifferentialTest, FuzzCorpusBitIdentical) {
  namespace e = arch::aarch64::enc;
  // A deterministic corpus spanning the model's shapes: every condition
  // code of a flag branch, arithmetic over several register selections,
  // memory, and symbolic opcode fields (immediate and destination).
  std::vector<std::pair<std::string, OpcodeSpec>> Corpus;
  for (unsigned C = 0; C < 16; ++C)
    Corpus.push_back({"bcond-" + std::to_string(C),
                      OpcodeSpec::concrete(0x54000000u | (0x10u << 5) | C)});
  for (unsigned D = 0; D < 31; D += 7)
    Corpus.push_back({"add-rd" + std::to_string(D),
                      OpcodeSpec::concrete(e::addImm(D, D, D + 1))});
  Corpus.push_back({"ldr", OpcodeSpec::concrete(e::ldrImm(0, 2, 0, 0))});
  Corpus.push_back({"str", OpcodeSpec::concrete(e::strImm(0, 2, 1, 0))});
  Corpus.push_back({"ret", OpcodeSpec::concrete(e::ret())});
  Corpus.push_back(
      {"sym-imm", OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 21, 10)});
  Corpus.push_back(
      {"sym-rd", OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 4, 0)});

  for (const auto &[Name, Op] : Corpus) {
    EnginePair P(Op, el1Assumptions());
    expectIdentical(P.R, P.S, Name);
  }
  // And the unconstrained flag branch, which forks.
  EnginePair P(OpcodeSpec::concrete(0x54000000u | (0x7fff0u << 5)),
               Assumptions());
  expectIdentical(P.R, P.S, "beq-unconstrained");
  EXPECT_GE(P.S.Stats.Paths, 2u);
}

TEST(SnapshotDifferentialTest, AllNineCaseStudiesAgree) {
  frontend::SuiteOptions Rep;
  Rep.Engine = ExecEngine::Replay;
  std::vector<frontend::CaseResult> R = frontend::runAllCaseStudies(Rep);

  frontend::SuiteOptions Snap;
  Snap.Engine = ExecEngine::Snapshot;
  std::vector<frontend::CaseResult> S = frontend::runAllCaseStudies(Snap);

  ASSERT_EQ(R.size(), S.size());
  for (size_t I = 0; I < R.size(); ++I) {
    EXPECT_EQ(R[I].Ok, S[I].Ok) << R[I].Name;
    EXPECT_EQ(R[I].ItlEvents, S[I].ItlEvents) << R[I].Name;
    EXPECT_EQ(R[I].AsmInstrs, S[I].AsmInstrs) << R[I].Name;
    EXPECT_EQ(R[I].Proof.PathsVerified, S[I].Proof.PathsVerified)
        << R[I].Name;
    EXPECT_EQ(R[I].Proof.EventsProcessed, S[I].Proof.EventsProcessed)
        << R[I].Name;
    EXPECT_EQ(R[I].Proof.Entailments, S[I].Proof.Entailments) << R[I].Name;
    // The whole point: the snapshot engine never re-executes a shared
    // prefix, the replay engine always does.
    EXPECT_LE(S[I].IslaStmts, R[I].IslaStmts) << R[I].Name;
    EXPECT_EQ(R[I].IslaStmtsSkipped, 0u) << R[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// The performance contract.
//===----------------------------------------------------------------------===//

TEST(SnapshotPerfTest, MultiPathStmtsAtLeastHalved) {
  namespace e = arch::aarch64::enc;
  // A symbolic destination register forks through the register-select
  // chain: 32 paths sharing one long decode prefix.
  OpcodeSpec Op = OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 4, 0);
  EnginePair P(Op, el1Assumptions());
  expectIdentical(P.R, P.S, "sym-rd");
  ASSERT_GT(P.S.Stats.Paths, 1u);

  // Replay re-dispatches the shared prefix once per path; the snapshot
  // engine restores it from checkpoints, so it executes at most half the
  // statements and the skipped count accounts for the difference.
  EXPECT_LE(P.S.Stats.StmtsExecuted * 2, P.R.Stats.StmtsExecuted);
  EXPECT_GT(P.S.Stats.StmtsSkippedBySnapshot, 0u);
  EXPECT_EQ(P.R.Stats.StmtsSkippedBySnapshot, 0u);
  // Strictly below paths x per-path cost (replay's figure is exactly the
  // per-path sum, so this is the "shared prefixes execute once" claim).
  EXPECT_LT(P.S.Stats.StmtsExecuted, P.R.Stats.StmtsExecuted);
}

//===----------------------------------------------------------------------===//
// Purity classification and the pure-helper summary memo.
//===----------------------------------------------------------------------===//

namespace {

const char *MemoArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register _PC : bits(64)

function dbl(x : bits(64)) -> bits(64) = {
  return x + x;
}

function quad(x : bits(64)) -> bits(64) = {
  return dbl(dbl(x));
}

function bump() -> unit = {
  X1 = X1 + 0x0000000000000001;
}

function decode(opcode : bits(32)) -> unit = {
  X1 = dbl(X0);
  X1 = dbl(X0);
  X1 = quad(X0);
  bump();
  _PC = _PC + 0x0000000000000004;
}
)";

std::unique_ptr<sail::Model> parseMemoArch() {
  std::string Err;
  auto M = sail::parseModel(MemoArch, Err);
  EXPECT_TRUE(M != nullptr) << Err;
  return M;
}

const sail::FunctionDecl *findFn(const sail::Model &M,
                                 const std::string &Name) {
  for (const auto &F : M.Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

} // namespace

TEST(PurityTest, ClassifierSeparatesPureFromEffectful) {
  auto M = parseMemoArch();
  ASSERT_TRUE(M);
  ASSERT_TRUE(findFn(*M, "dbl"));
  EXPECT_TRUE(findFn(*M, "dbl")->IsPure);
  ASSERT_TRUE(findFn(*M, "quad"));
  EXPECT_TRUE(findFn(*M, "quad")->IsPure); // pure via pure callee
  ASSERT_TRUE(findFn(*M, "bump"));
  EXPECT_FALSE(findFn(*M, "bump")->IsPure); // writes a register
  ASSERT_TRUE(findFn(*M, "decode"));
  EXPECT_FALSE(findFn(*M, "decode")->IsPure);
}

TEST(PurityTest, ProductionModelsClassifyRegisterAccessAsImpure) {
  // Spot check on the real models: anything touching registers or memory
  // must be impure, or the memo could replay stale machine state.
  const sail::Model &Arm = models::aarch64Model();
  for (const char *N : {"decode", "rget", "rset", "aget_SP", "aset_SP"}) {
    const sail::FunctionDecl *F = findFn(Arm, N);
    if (F)
      EXPECT_FALSE(F->IsPure) << N;
  }
}

TEST(HelperMemoTest, RepeatedPureCallsHitTheMemo) {
  auto M = parseMemoArch();
  ASSERT_TRUE(M);

  ExecOptions Rep;
  Rep.Engine = ExecEngine::Replay;
  smt::TermBuilder TBr;
  Executor Er(*M, TBr);
  ExecResult R = Er.run(OpcodeSpec::concrete(0), Assumptions(), Rep);
  ASSERT_TRUE(R.Ok) << R.Error;

  ExecOptions Snap;
  Snap.Engine = ExecEngine::Snapshot;
  smt::TermBuilder TBs;
  Executor Es(*M, TBs);
  ExecResult S = Es.run(OpcodeSpec::concrete(0), Assumptions(), Snap);
  ASSERT_TRUE(S.Ok) << S.Error;

  // dbl(X0) is called four times with the same argument term (the cached
  // X0 read): the 2nd, and both inner calls of quad's outer dbl(dbl(X0))
  // — the inner dbl(X0) and the outer dbl(v) after the first compute.
  EXPECT_GE(S.Stats.HelperMemoHits, 2u);
  // Memoization must not change the trace.
  EXPECT_EQ(R.Trace.toString(), S.Trace.toString());
  EXPECT_EQ(R.Stats.Events, S.Stats.Events);
}

//===----------------------------------------------------------------------===//
// Persistent side-condition store wired into branch pruning.
//===----------------------------------------------------------------------===//

TEST(ExecutorSideCondTest, SecondRunAnswersPruningFromStore) {
  // In-memory store shared by two fresh (builder, executor) pairs — the
  // shape of two batch jobs or two processes sharing a cache dir.
  cache::SideCondStore Store{cache::SideCondConfig()};

  OpcodeSpec Beq = OpcodeSpec::concrete(0x54000000u | (0x7fff0u << 5));

  smt::TermBuilder TB1;
  Executor E1(models::aarch64Model(), TB1);
  E1.setSolverCache(&Store);
  ExecResult R1 = E1.run(Beq, Assumptions());
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_GT(R1.Stats.SolverQueries, 0u);
  EXPECT_EQ(R1.Stats.SolverStoreHits, 0u); // cold store

  smt::TermBuilder TB2;
  Executor E2(models::aarch64Model(), TB2);
  E2.setSolverCache(&Store);
  ExecResult R2 = E2.run(Beq, Assumptions());
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_GT(R2.Stats.SolverStoreHits, 0u);
  EXPECT_EQ(R1.Trace.toString(), R2.Trace.toString());

  // The salted view keys the same queries differently, so a different
  // model's fingerprint can never serve these entries.
  cache::Fingerprint OtherSalt;
  OtherSalt.Lo = 0x1234;
  cache::SaltedSolverCache Salted(Store, OtherSalt);
  smt::TermBuilder TB3;
  Executor E3(models::aarch64Model(), TB3);
  E3.setSolverCache(&Salted);
  ExecResult R3 = E3.run(Beq, Assumptions());
  ASSERT_TRUE(R3.Ok) << R3.Error;
  EXPECT_EQ(R3.Stats.SolverStoreHits, 0u);
  EXPECT_EQ(R3.Trace.toString(), R1.Trace.toString());
}

//===----------------------------------------------------------------------===//
// Post-dominator path merging.
//
// The merge engine's contract is weaker than snapshot's bit-identity: its
// traces are *semantically equivalent* (each fork's arms collapse into ite
// values at the join, so variable naming and event layout differ), so the
// differential oracle here is the §5 validation checker — per-path solver
// witnesses plus randomized states replayed through the concrete reference
// interpreter — rather than string equality.
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Op under the snapshot engine (the enumeration baseline) and the
/// merge engine in fresh builders.
struct MergePair {
  smt::TermBuilder TBs, TBm;
  ExecResult S, M; ///< Snapshot / merge results.

  MergePair(const sail::Model &Mod, const OpcodeSpec &Op,
            const Assumptions &A, unsigned Budget = 0) {
    ExecOptions Snap;
    Snap.Engine = ExecEngine::Snapshot;
    Executor Es(Mod, TBs);
    S = Es.run(Op, A, Snap);

    ExecOptions Mrg;
    Mrg.Engine = ExecEngine::Merge;
    if (Budget)
      Mrg.MergeTermBudget = Budget;
    Executor Em(Mod, TBm);
    M = Em.run(Op, A, Mrg);
  }
};

/// Semantic equivalence of a (possibly merged) trace for a concrete opcode
/// via the validation checker: every linear path solver-witnessed and
/// replayed against the concrete model interpreter.
void expectValidates(const sail::Model &Mod, smt::TermBuilder &TB,
                     uint32_t Opcode, const Assumptions &A,
                     const ExecResult &R, const std::string &What) {
  ASSERT_TRUE(R.Ok) << What << ": " << R.Error;
  validation::ValidationResult VR = validation::validateInstruction(
      Mod, TB, Opcode, A, R.Trace, "_PC", /*RandomTrials=*/4, Opcode);
  EXPECT_TRUE(VR.Ok) << What << ": " << VR.Error;
  EXPECT_EQ(VR.PathsCovered, VR.Paths) << What;
}

} // namespace

TEST(MergeDifferentialTest, ForkingBranchCollapsesToOnePath) {
  // beq with unconstrained flags: both arms feasible, joining at the end
  // of decode.  The merge engine must collapse them into a single path
  // whose register writes are ite terms on the branch condition.
  uint32_t Beq = 0x54000000u | (0x7fff0u << 5);
  MergePair P(models::aarch64Model(), OpcodeSpec::concrete(Beq),
              Assumptions());
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_GE(P.S.Stats.Paths, 2u);
  EXPECT_EQ(P.M.Stats.Paths, 1u);
  EXPECT_GE(P.M.Stats.PathsMerged, 1u);
  EXPECT_EQ(P.M.Stats.MergeFallbacks, 0u);
  EXPECT_GT(P.M.Stats.IteTermsIntroduced, 0u);
  // One fork saves the post-join suffix re-execution; never costs more.
  EXPECT_LE(P.M.Stats.StmtsExecuted, P.S.Stats.StmtsExecuted);
  // A healthy rewrite-rule set never hits the fixpoint cap, ite terms
  // included.
  EXPECT_EQ(P.M.Stats.FixpointCapHits, 0u);
  expectValidates(models::aarch64Model(), P.TBm, Beq, Assumptions(), P.M,
                  "beq-merged");
}

TEST(MergeDifferentialTest, FuzzCorpusSemanticallyEquivalent) {
  namespace e = arch::aarch64::enc;
  // The snapshot corpus's concrete opcodes, revalidated under merging:
  // same Ok verdict, never more paths than enumeration, and the merged
  // trace semantically equivalent per the validation checker.
  std::vector<std::pair<std::string, uint32_t>> Corpus;
  for (unsigned C = 0; C < 16; C += 3)
    Corpus.push_back({"bcond-" + std::to_string(C),
                      0x54000000u | (0x10u << 5) | C});
  Corpus.push_back({"add", e::addImm(3, 3, 4)});
  Corpus.push_back({"ldr", e::ldrImm(0, 2, 0, 0)});
  Corpus.push_back({"str", e::strImm(0, 2, 1, 0)});
  Corpus.push_back({"ret", e::ret()});

  unsigned TotalMerged = 0;
  for (const auto &[Name, Op] : Corpus) {
    MergePair P(models::aarch64Model(), OpcodeSpec::concrete(Op),
                el1Assumptions());
    ASSERT_EQ(P.S.Ok, P.M.Ok) << Name << ": " << P.S.Error << " / "
                              << P.M.Error;
    if (!P.S.Ok)
      continue;
    EXPECT_LE(P.M.Stats.Paths, P.S.Stats.Paths) << Name;
    ASSERT_EQ(P.S.OpcodeVars.size(), P.M.OpcodeVars.size()) << Name;
    TotalMerged += P.M.Stats.PathsMerged;
    expectValidates(models::aarch64Model(), P.TBm, Op, el1Assumptions(),
                    P.M, Name);
  }
  // The flag-condition branches fork, so at least one of them must have
  // actually merged — otherwise the engine silently degenerated into
  // enumeration and this test proves nothing.
  EXPECT_GE(TotalMerged, 1u);
}

namespace {

/// Independent two-way forks: enumeration explores 2^N leaves, merging
/// collapses each fork at its join and re-reaches the next one once.
const char *ManyBranchArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register X2 : bits(64)
register X3 : bits(64)
register _PC : bits(64)

function decode(opcode : bits(32)) -> unit = {
  if opcode[0] == 0b1 then { X1 = X0 + X0; } else { X1 = X0; };
  if opcode[1] == 0b1 then { X2 = X1 + X1; } else { X2 = X1; };
  if opcode[2] == 0b1 then { X3 = X2 + X2; } else { X3 = X2; };
  _PC = _PC + 0x0000000000000004;
}
)";

std::unique_ptr<sail::Model> parseArch(const char *Src) {
  std::string Err;
  auto M = sail::parseModel(Src, Err);
  EXPECT_TRUE(M != nullptr) << Err;
  return M;
}

} // namespace

TEST(MergeDifferentialTest, IndependentForksMergeSuperLinearly) {
  auto M = parseArch(ManyBranchArch);
  ASSERT_TRUE(M);
  // Bits 2..0 symbolic: three independent both-feasible forks.
  OpcodeSpec Op = OpcodeSpec::symbolicField(0, 2, 0);
  MergePair P(*M, Op, Assumptions());
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_EQ(P.S.Stats.Paths, 8u);
  EXPECT_EQ(P.M.Stats.Paths, 1u);
  EXPECT_EQ(P.M.Stats.PathsMerged, 3u);
  EXPECT_EQ(P.M.Stats.MergeFallbacks, 0u);
  EXPECT_GE(P.M.Stats.IteTermsIntroduced, 3u);
  // The super-linear claim: enumeration re-executes every suffix once per
  // leaf (tree of 2^N paths); merging executes each arm exactly once.
  EXPECT_LT(P.M.Stats.StmtsExecuted * 2, P.S.Stats.StmtsExecuted);
}

namespace {

/// A fork nested inside another fork's then-arm.  The inner fork merges
/// first; its joined events (defines, reads, ite writes — no assert) keep
/// the outer arm mergeable, so the outer fork merges too.
const char *NestedForkArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register X2 : bits(64)
register _PC : bits(64)

function decode(opcode : bits(32)) -> unit = {
  if opcode[0] == 0b1 then {
    if opcode[1] == 0b1 then { X1 = X0 + X0; } else { X1 = X0; };
    X2 = X1;
  } else {
    X2 = X0;
  };
  _PC = _PC + 0x0000000000000004;
}
)";

/// An arm that returns early never reaches the join: the fork must demote
/// to plain enumeration (and, being pure enumeration, stay bit-identical
/// to the snapshot engine).
const char *EarlyReturnArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register X2 : bits(64)
register _PC : bits(64)

function decode(opcode : bits(32)) -> unit = {
  if opcode[0] == 0b1 then { X1 = X0; return; } else { X1 = X0 + X0; };
  X2 = X1;
  _PC = _PC + 0x0000000000000004;
}
)";

/// An arm with a memory event: joins on memory state are out of scope, so
/// the fork must fall back at the join check.
const char *MemWriteArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register _PC : bits(64)

function decode(opcode : bits(32)) -> unit = {
  if opcode[0] == 0b1 then {
    write_mem(0x0000000000001000, truncate(X0, 8), 1);
  } else {
    X1 = X0 + X0;
  };
  _PC = _PC + 0x0000000000000004;
}
)";

} // namespace

TEST(MergeDifferentialTest, NestedForksMergeHierarchically) {
  auto M = parseArch(NestedForkArch);
  ASSERT_TRUE(M);
  OpcodeSpec Op = OpcodeSpec::symbolicField(0, 1, 0);
  MergePair P(*M, Op, Assumptions());
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_EQ(P.S.Stats.Paths, 3u);
  EXPECT_EQ(P.M.Stats.Paths, 1u);
  EXPECT_EQ(P.M.Stats.PathsMerged, 2u);
  EXPECT_EQ(P.M.Stats.MergeFallbacks, 0u);
}

TEST(MergeDifferentialTest, EarlyReturnFallsBackToEnumeration) {
  auto M = parseArch(EarlyReturnArch);
  ASSERT_TRUE(M);
  OpcodeSpec Op = OpcodeSpec::symbolicField(0, 0, 0);
  MergePair P(*M, Op, Assumptions());
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_EQ(P.M.Stats.PathsMerged, 0u);
  EXPECT_EQ(P.M.Stats.MergeFallbacks, 1u);
  EXPECT_EQ(P.M.Stats.Paths, P.S.Stats.Paths);
  // A then-arm fallback happens before any else-side work, so the demoted
  // fork enumerates exactly like the snapshot engine — bit-identical.
  EXPECT_EQ(P.M.Trace.toString(), P.S.Trace.toString());
}

TEST(MergeDifferentialTest, MemoryEventFallsBackToEnumeration) {
  auto M = parseArch(MemWriteArch);
  ASSERT_TRUE(M);
  OpcodeSpec Op = OpcodeSpec::symbolicField(0, 0, 0);
  MergePair P(*M, Op, Assumptions());
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_EQ(P.M.Stats.PathsMerged, 0u);
  EXPECT_EQ(P.M.Stats.MergeFallbacks, 1u);
  EXPECT_EQ(P.M.Stats.Paths, P.S.Stats.Paths);
  EXPECT_EQ(P.M.Trace.toString(), P.S.Trace.toString());
}

TEST(MergeDifferentialTest, TinyBudgetFallsBackToEnumeration) {
  // A one-node term budget rejects every ite candidate, so the engine must
  // demote cleanly to enumeration — same path count, still validated.
  uint32_t Beq = 0x54000000u | (0x7fff0u << 5);
  MergePair P(models::aarch64Model(), OpcodeSpec::concrete(Beq),
              Assumptions(), /*Budget=*/1);
  ASSERT_TRUE(P.S.Ok) << P.S.Error;
  ASSERT_TRUE(P.M.Ok) << P.M.Error;
  EXPECT_EQ(P.M.Stats.PathsMerged, 0u);
  EXPECT_GE(P.M.Stats.MergeFallbacks, 1u);
  EXPECT_EQ(P.M.Stats.IteTermsIntroduced, 0u);
  EXPECT_EQ(P.M.Stats.Paths, P.S.Stats.Paths);
  expectValidates(models::aarch64Model(), P.TBm, Beq, Assumptions(), P.M,
                  "beq-budget-fallback");
}

TEST(MergeSuiteTest, AllNineCaseStudiesVerifyUnderMerge) {
  // End-to-end semantic equivalence: every Fig. 12 proof must go through
  // against merged traces exactly as it does against enumerated ones.
  frontend::SuiteOptions Snap;
  Snap.Engine = ExecEngine::Snapshot;
  std::vector<frontend::CaseResult> S = frontend::runAllCaseStudies(Snap);

  frontend::SuiteOptions Mrg;
  Mrg.Engine = ExecEngine::Merge;
  std::vector<frontend::CaseResult> M = frontend::runAllCaseStudies(Mrg);

  ASSERT_EQ(S.size(), M.size());
  for (size_t I = 0; I < S.size(); ++I) {
    EXPECT_EQ(S[I].Ok, M[I].Ok)
        << S[I].Name << ": " << S[I].Error << " / " << M[I].Error;
    EXPECT_EQ(S[I].AsmInstrs, M[I].AsmInstrs) << S[I].Name;
    EXPECT_EQ(S[I].FixpointCapHits, 0u) << S[I].Name;
    EXPECT_EQ(M[I].FixpointCapHits, 0u) << M[I].Name;
    // Snapshot never merges; its counters must stay zero.
    EXPECT_EQ(S[I].PathsMerged, 0u) << S[I].Name;
    EXPECT_EQ(S[I].MergeFallbacks, 0u) << S[I].Name;
  }
}
