//===- tests/snapshot_test.cpp - Snapshot-forking engine tests -----------------===//
//
// The snapshot engine's contract: traces bit-identical to the replay
// engine (the differential oracle) while executing strictly fewer model
// statements on multi-path instructions, plus the purity classification
// and pure-helper summary memo that ride on it, and the persistent
// side-condition store wired into the executor's pruning queries.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "cache/SideCondCache.h"
#include "frontend/CaseStudies.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "sail/Parser.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::isla;
using islaris::itl::Reg;

namespace {

Assumptions el1Assumptions() {
  Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  return A;
}

/// Runs \p Op under both engines in fresh builders.  The results' traces
/// point into the builders, so both live here together.
struct EnginePair {
  smt::TermBuilder TBr, TBs;
  ExecResult R, S; ///< Replay / snapshot results.

  EnginePair(const OpcodeSpec &Op, const Assumptions &A) {
    ExecOptions Rep;
    Rep.Engine = ExecEngine::Replay;
    Executor Er(models::aarch64Model(), TBr);
    R = Er.run(Op, A, Rep);

    ExecOptions Snap;
    Snap.Engine = ExecEngine::Snapshot;
    Executor Es(models::aarch64Model(), TBs);
    S = Es.run(Op, A, Snap);
  }
};

/// Bit-identity of the merged trace plus the stats both engines must agree
/// on.  SolverQueries is deliberately NOT compared: replay legitimately
/// re-issues per-path assertion checks that the snapshot engine runs once.
void expectIdentical(const ExecResult &R, const ExecResult &S,
                     const std::string &What) {
  ASSERT_EQ(R.Ok, S.Ok) << What << ": " << R.Error << " / " << S.Error;
  if (!R.Ok)
    return;
  EXPECT_EQ(R.Trace.toString(), S.Trace.toString()) << What;
  EXPECT_EQ(R.Stats.Paths, S.Stats.Paths) << What;
  EXPECT_EQ(R.Stats.Events, S.Stats.Events) << What;
  EXPECT_EQ(R.Stats.PrunedBranches, S.Stats.PrunedBranches) << What;
  ASSERT_EQ(R.OpcodeVars.size(), S.OpcodeVars.size()) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: snapshot vs replay.
//===----------------------------------------------------------------------===//

TEST(SnapshotDifferentialTest, FuzzCorpusBitIdentical) {
  namespace e = arch::aarch64::enc;
  // A deterministic corpus spanning the model's shapes: every condition
  // code of a flag branch, arithmetic over several register selections,
  // memory, and symbolic opcode fields (immediate and destination).
  std::vector<std::pair<std::string, OpcodeSpec>> Corpus;
  for (unsigned C = 0; C < 16; ++C)
    Corpus.push_back({"bcond-" + std::to_string(C),
                      OpcodeSpec::concrete(0x54000000u | (0x10u << 5) | C)});
  for (unsigned D = 0; D < 31; D += 7)
    Corpus.push_back({"add-rd" + std::to_string(D),
                      OpcodeSpec::concrete(e::addImm(D, D, D + 1))});
  Corpus.push_back({"ldr", OpcodeSpec::concrete(e::ldrImm(0, 2, 0, 0))});
  Corpus.push_back({"str", OpcodeSpec::concrete(e::strImm(0, 2, 1, 0))});
  Corpus.push_back({"ret", OpcodeSpec::concrete(e::ret())});
  Corpus.push_back(
      {"sym-imm", OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 21, 10)});
  Corpus.push_back(
      {"sym-rd", OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 4, 0)});

  for (const auto &[Name, Op] : Corpus) {
    EnginePair P(Op, el1Assumptions());
    expectIdentical(P.R, P.S, Name);
  }
  // And the unconstrained flag branch, which forks.
  EnginePair P(OpcodeSpec::concrete(0x54000000u | (0x7fff0u << 5)),
               Assumptions());
  expectIdentical(P.R, P.S, "beq-unconstrained");
  EXPECT_GE(P.S.Stats.Paths, 2u);
}

TEST(SnapshotDifferentialTest, AllNineCaseStudiesAgree) {
  frontend::SuiteOptions Rep;
  Rep.Engine = ExecEngine::Replay;
  std::vector<frontend::CaseResult> R = frontend::runAllCaseStudies(Rep);

  frontend::SuiteOptions Snap;
  Snap.Engine = ExecEngine::Snapshot;
  std::vector<frontend::CaseResult> S = frontend::runAllCaseStudies(Snap);

  ASSERT_EQ(R.size(), S.size());
  for (size_t I = 0; I < R.size(); ++I) {
    EXPECT_EQ(R[I].Ok, S[I].Ok) << R[I].Name;
    EXPECT_EQ(R[I].ItlEvents, S[I].ItlEvents) << R[I].Name;
    EXPECT_EQ(R[I].AsmInstrs, S[I].AsmInstrs) << R[I].Name;
    EXPECT_EQ(R[I].Proof.PathsVerified, S[I].Proof.PathsVerified)
        << R[I].Name;
    EXPECT_EQ(R[I].Proof.EventsProcessed, S[I].Proof.EventsProcessed)
        << R[I].Name;
    EXPECT_EQ(R[I].Proof.Entailments, S[I].Proof.Entailments) << R[I].Name;
    // The whole point: the snapshot engine never re-executes a shared
    // prefix, the replay engine always does.
    EXPECT_LE(S[I].IslaStmts, R[I].IslaStmts) << R[I].Name;
    EXPECT_EQ(R[I].IslaStmtsSkipped, 0u) << R[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// The performance contract.
//===----------------------------------------------------------------------===//

TEST(SnapshotPerfTest, MultiPathStmtsAtLeastHalved) {
  namespace e = arch::aarch64::enc;
  // A symbolic destination register forks through the register-select
  // chain: 32 paths sharing one long decode prefix.
  OpcodeSpec Op = OpcodeSpec::symbolicField(e::addImm(0, 0, 1), 4, 0);
  EnginePair P(Op, el1Assumptions());
  expectIdentical(P.R, P.S, "sym-rd");
  ASSERT_GT(P.S.Stats.Paths, 1u);

  // Replay re-dispatches the shared prefix once per path; the snapshot
  // engine restores it from checkpoints, so it executes at most half the
  // statements and the skipped count accounts for the difference.
  EXPECT_LE(P.S.Stats.StmtsExecuted * 2, P.R.Stats.StmtsExecuted);
  EXPECT_GT(P.S.Stats.StmtsSkippedBySnapshot, 0u);
  EXPECT_EQ(P.R.Stats.StmtsSkippedBySnapshot, 0u);
  // Strictly below paths x per-path cost (replay's figure is exactly the
  // per-path sum, so this is the "shared prefixes execute once" claim).
  EXPECT_LT(P.S.Stats.StmtsExecuted, P.R.Stats.StmtsExecuted);
}

//===----------------------------------------------------------------------===//
// Purity classification and the pure-helper summary memo.
//===----------------------------------------------------------------------===//

namespace {

const char *MemoArch = R"(
register X0 : bits(64)
register X1 : bits(64)
register _PC : bits(64)

function dbl(x : bits(64)) -> bits(64) = {
  return x + x;
}

function quad(x : bits(64)) -> bits(64) = {
  return dbl(dbl(x));
}

function bump() -> unit = {
  X1 = X1 + 0x0000000000000001;
}

function decode(opcode : bits(32)) -> unit = {
  X1 = dbl(X0);
  X1 = dbl(X0);
  X1 = quad(X0);
  bump();
  _PC = _PC + 0x0000000000000004;
}
)";

std::unique_ptr<sail::Model> parseMemoArch() {
  std::string Err;
  auto M = sail::parseModel(MemoArch, Err);
  EXPECT_TRUE(M != nullptr) << Err;
  return M;
}

const sail::FunctionDecl *findFn(const sail::Model &M,
                                 const std::string &Name) {
  for (const auto &F : M.Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

} // namespace

TEST(PurityTest, ClassifierSeparatesPureFromEffectful) {
  auto M = parseMemoArch();
  ASSERT_TRUE(M);
  ASSERT_TRUE(findFn(*M, "dbl"));
  EXPECT_TRUE(findFn(*M, "dbl")->IsPure);
  ASSERT_TRUE(findFn(*M, "quad"));
  EXPECT_TRUE(findFn(*M, "quad")->IsPure); // pure via pure callee
  ASSERT_TRUE(findFn(*M, "bump"));
  EXPECT_FALSE(findFn(*M, "bump")->IsPure); // writes a register
  ASSERT_TRUE(findFn(*M, "decode"));
  EXPECT_FALSE(findFn(*M, "decode")->IsPure);
}

TEST(PurityTest, ProductionModelsClassifyRegisterAccessAsImpure) {
  // Spot check on the real models: anything touching registers or memory
  // must be impure, or the memo could replay stale machine state.
  const sail::Model &Arm = models::aarch64Model();
  for (const char *N : {"decode", "rget", "rset", "aget_SP", "aset_SP"}) {
    const sail::FunctionDecl *F = findFn(Arm, N);
    if (F)
      EXPECT_FALSE(F->IsPure) << N;
  }
}

TEST(HelperMemoTest, RepeatedPureCallsHitTheMemo) {
  auto M = parseMemoArch();
  ASSERT_TRUE(M);

  ExecOptions Rep;
  Rep.Engine = ExecEngine::Replay;
  smt::TermBuilder TBr;
  Executor Er(*M, TBr);
  ExecResult R = Er.run(OpcodeSpec::concrete(0), Assumptions(), Rep);
  ASSERT_TRUE(R.Ok) << R.Error;

  ExecOptions Snap;
  Snap.Engine = ExecEngine::Snapshot;
  smt::TermBuilder TBs;
  Executor Es(*M, TBs);
  ExecResult S = Es.run(OpcodeSpec::concrete(0), Assumptions(), Snap);
  ASSERT_TRUE(S.Ok) << S.Error;

  // dbl(X0) is called four times with the same argument term (the cached
  // X0 read): the 2nd, and both inner calls of quad's outer dbl(dbl(X0))
  // — the inner dbl(X0) and the outer dbl(v) after the first compute.
  EXPECT_GE(S.Stats.HelperMemoHits, 2u);
  // Memoization must not change the trace.
  EXPECT_EQ(R.Trace.toString(), S.Trace.toString());
  EXPECT_EQ(R.Stats.Events, S.Stats.Events);
}

//===----------------------------------------------------------------------===//
// Persistent side-condition store wired into branch pruning.
//===----------------------------------------------------------------------===//

TEST(ExecutorSideCondTest, SecondRunAnswersPruningFromStore) {
  // In-memory store shared by two fresh (builder, executor) pairs — the
  // shape of two batch jobs or two processes sharing a cache dir.
  cache::SideCondStore Store{cache::SideCondConfig()};

  OpcodeSpec Beq = OpcodeSpec::concrete(0x54000000u | (0x7fff0u << 5));

  smt::TermBuilder TB1;
  Executor E1(models::aarch64Model(), TB1);
  E1.setSolverCache(&Store);
  ExecResult R1 = E1.run(Beq, Assumptions());
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_GT(R1.Stats.SolverQueries, 0u);
  EXPECT_EQ(R1.Stats.SolverStoreHits, 0u); // cold store

  smt::TermBuilder TB2;
  Executor E2(models::aarch64Model(), TB2);
  E2.setSolverCache(&Store);
  ExecResult R2 = E2.run(Beq, Assumptions());
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_GT(R2.Stats.SolverStoreHits, 0u);
  EXPECT_EQ(R1.Trace.toString(), R2.Trace.toString());

  // The salted view keys the same queries differently, so a different
  // model's fingerprint can never serve these entries.
  cache::Fingerprint OtherSalt;
  OtherSalt.Lo = 0x1234;
  cache::SaltedSolverCache Salted(Store, OtherSalt);
  smt::TermBuilder TB3;
  Executor E3(models::aarch64Model(), TB3);
  E3.setSolverCache(&Salted);
  ExecResult R3 = E3.run(Beq, Assumptions());
  ASSERT_TRUE(R3.Ok) << R3.Error;
  EXPECT_EQ(R3.Stats.SolverStoreHits, 0u);
  EXPECT_EQ(R3.Trace.toString(), R1.Trace.toString());
}
