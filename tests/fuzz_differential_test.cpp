//===- tests/fuzz_differential_test.cpp - Model/executor fuzzing ---------------===//
//
// Randomized differential testing of the whole trace-generation pipeline:
// for randomly generated instructions across the supported encodings,
// generate the Isla trace and validate it against the concrete model
// interpreter (per-path solver witnesses + random states).  This is the
// broad-coverage safety net behind the hand-picked validation suite.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "isla/Executor.h"
#include "models/Models.h"
#include "support/Guard.h"
#include "validation/Validator.h"

#include <gtest/gtest.h>

#include <random>

using namespace islaris;
using islaris::itl::Reg;

namespace {

/// Guards for every fuzz validation: generous enough to never fire on a
/// healthy pipeline, tight enough that a wedged solver fails the round with
/// an attributed Diag instead of hanging the whole suite.
support::RunLimits fuzzLimits() {
  support::RunLimits L;
  L.SolverCheckSeconds = 10;
  L.InstrSeconds = 60;
  return L;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, ArmUserLevelInstructions) {
  namespace e = arch::aarch64::enc;
  std::mt19937_64 Rng(unsigned(GetParam()) * 2654435761u + 11);
  auto R5 = [&] { return unsigned(Rng() % 31); }; // avoid reg 31 cases
  auto Imm12 = [&] { return uint16_t(Rng() % 4096); };
  auto Imm16 = [&] { return uint16_t(Rng()); };
  auto Sh = [&] { return 1 + unsigned(Rng() % 63); };
  auto Off = [&] { return (int64_t(Rng() % 512) - 256) * 4; };

  // User-level configuration: EL1, SP_EL1, alignment checking off.
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(Reg("SCTLR_EL1"), BitVec(64, 0));

  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);

  for (int Round = 0; Round < 60; ++Round) {
    uint32_t Op = 0;
    switch (Rng() % 19) {
    case 0:
      Op = e::movz(R5(), Imm16(), unsigned(Rng() % 4));
      break;
    case 1:
      Op = e::movk(R5(), Imm16(), unsigned(Rng() % 4));
      break;
    case 2:
      Op = e::movn(R5(), Imm16(), unsigned(Rng() % 4));
      break;
    case 3:
      Op = e::addImm(R5(), unsigned(Rng() % 32), Imm12(), Rng() % 2);
      break;
    case 4:
      Op = e::subsImm(R5(), R5(), Imm12());
      break;
    case 5:
      Op = e::addsReg(R5(), R5(), R5());
      break;
    case 6:
      Op = e::subReg(R5(), R5(), R5());
      break;
    case 7:
      Op = (Rng() % 2) ? e::andReg(R5(), R5(), R5())
                       : e::eorReg(R5(), R5(), R5());
      break;
    case 8:
      Op = e::andsReg(R5(), R5(), R5());
      break;
    case 9:
      Op = (Rng() % 2) ? e::lsrImm(R5(), R5(), Sh())
                       : e::lslImm(R5(), R5(), Sh());
      break;
    case 10:
      Op = e::asrImm(R5(), R5(), Sh());
      break;
    case 11:
      Op = (Rng() % 2) ? e::rbit64(R5(), R5()) : e::rbit32(R5(), R5());
      break;
    case 12: {
      unsigned Size = unsigned(Rng() % 4);
      Op = (Rng() % 2) ? e::ldrImm(Size, R5(), R5(), uint16_t(Rng() % 64))
                       : e::strImm(Size, R5(), R5(), uint16_t(Rng() % 64));
      break;
    }
    case 13: {
      unsigned Size = unsigned(Rng() % 4);
      Op = (Rng() % 2) ? e::ldrReg(Size, R5(), R5(), R5(), Rng() % 2)
                       : e::strReg(Size, R5(), R5(), R5(), Rng() % 2);
      break;
    }
    case 14:
      Op = (Rng() % 2) ? e::cbz(R5(), Off()) : e::cbnz(R5(), Off());
      break;
    case 15:
      Op = (Rng() % 2) ? e::tbz(R5(), unsigned(Rng() % 64), Off())
                       : e::tbnz(R5(), unsigned(Rng() % 64), Off());
      break;
    case 16:
      Op = e::bcond(arch::aarch64::Cond(Rng() % 14), Off());
      break;
    case 17: {
      arch::aarch64::Cond C = arch::aarch64::Cond(Rng() % 14);
      switch (Rng() % 8) {
      case 0:
        Op = e::csel(R5(), R5(), R5(), C);
        break;
      case 1:
        Op = e::csinc(R5(), R5(), R5(), C);
        break;
      case 2:
        Op = e::csinv(R5(), R5(), R5(), C);
        break;
      case 3:
        Op = e::csneg(R5(), R5(), R5(), C);
        break;
      case 4:
        Op = e::udiv(R5(), R5(), R5());
        break;
      case 5:
        Op = e::sdiv(R5(), R5(), R5());
        break;
      case 6:
        Op = e::adr(R5(), int64_t(Rng() % 8192) - 4096);
        break;
      default:
        Op = (Rng() % 2) ? e::rev64(R5(), R5()) : e::rev32(R5(), R5());
        break;
      }
      break;
    }
    default:
      switch (Rng() % 5) {
      case 0:
        Op = e::b(Off());
        break;
      case 1:
        Op = e::bl(Off());
        break;
      case 2:
        Op = e::br(R5());
        break;
      case 3:
        Op = e::blr(R5());
        break;
      default:
        Op = e::ret(R5());
        break;
      }
      break;
    }

    isla::ExecResult R = Ex.run(isla::OpcodeSpec::concrete(Op), A);
    ASSERT_TRUE(R.Ok) << BitVec(32, Op).toHexString() << ": " << R.Error;
    support::RunLimits Limits = fuzzLimits();
    validation::ValidationResult VR = validation::validateInstruction(
        models::aarch64Model(), TB, Op, A, R.Trace, "_PC",
        /*RandomTrials=*/3, Op ^ uint64_t(GetParam()), &Limits);
    EXPECT_TRUE(VR.Ok) << BitVec(32, Op).toHexString() << ": " << VR.Error;
    EXPECT_EQ(VR.PathsCovered, VR.Paths) << BitVec(32, Op).toHexString();
  }
}

TEST_P(FuzzTest, RvInstructions) {
  namespace e = arch::rv64::enc;
  std::mt19937_64 Rng(unsigned(GetParam()) * 48271u + 13);
  auto R5 = [&] { return unsigned(Rng() % 32); };
  auto I12 = [&] { return int32_t(Rng() % 4096) - 2048; };
  auto BOff = [&] { return (int64_t(Rng() % 512) - 256) * 2; };

  smt::TermBuilder TB;
  isla::Executor Ex(models::rv64Model(), TB);

  for (int Round = 0; Round < 60; ++Round) {
    uint32_t Op = 0;
    switch (Rng() % 15) {
    case 0:
      Op = e::lui(R5(), uint32_t(Rng() % (1u << 20)));
      break;
    case 1:
      Op = e::auipc(R5(), uint32_t(Rng() % (1u << 20)));
      break;
    case 2:
      Op = e::addi(R5(), R5(), I12());
      break;
    case 3:
      Op = (Rng() % 3 == 0)   ? e::xori(R5(), R5(), I12())
           : (Rng() % 2 == 0) ? e::ori(R5(), R5(), I12())
                              : e::andi(R5(), R5(), I12());
      break;
    case 4:
      Op = e::sltiu(R5(), R5(), I12());
      break;
    case 5:
      Op = (Rng() % 3 == 0)   ? e::slli(R5(), R5(), unsigned(Rng() % 64))
           : (Rng() % 2 == 0) ? e::srli(R5(), R5(), unsigned(Rng() % 64))
                              : e::srai(R5(), R5(), unsigned(Rng() % 64));
      break;
    case 6:
      Op = (Rng() % 2) ? e::add(R5(), R5(), R5()) : e::sub(R5(), R5(), R5());
      break;
    case 7:
      Op = (Rng() % 3 == 0)   ? e::xorr(R5(), R5(), R5())
           : (Rng() % 2 == 0) ? e::orr(R5(), R5(), R5())
                              : e::andr(R5(), R5(), R5());
      break;
    case 8:
      Op = (Rng() % 3 == 0)   ? e::sll(R5(), R5(), R5())
           : (Rng() % 2 == 0) ? e::srl(R5(), R5(), R5())
                              : e::sltu(R5(), R5(), R5());
      break;
    case 9:
      Op = (Rng() % 3 == 0)   ? e::lb(R5(), R5(), I12())
           : (Rng() % 2 == 0) ? e::lbu(R5(), R5(), I12())
                              : e::lw(R5(), R5(), I12());
      break;
    case 10:
      Op = (Rng() % 2) ? e::ld(R5(), R5(), I12())
                       : e::sd(R5(), R5(), I12());
      break;
    case 11:
      Op = (Rng() % 2) ? e::sb(R5(), R5(), I12())
                       : e::sw(R5(), R5(), I12());
      break;
    case 12: {
      unsigned F = unsigned(Rng() % 6);
      unsigned A2 = R5(), B2 = R5();
      int64_t O2 = BOff();
      Op = F == 0   ? e::beq(A2, B2, O2)
           : F == 1 ? e::bne(A2, B2, O2)
           : F == 2 ? e::blt(A2, B2, O2)
           : F == 3 ? e::bge(A2, B2, O2)
           : F == 4 ? e::bltu(A2, B2, O2)
                    : e::bgeu(A2, B2, O2);
      break;
    }
    case 13:
      Op = (Rng() % 2) ? e::jal(R5(), BOff())
                       : e::jalr(R5(), R5(), I12());
      break;
    default:
      switch (Rng() % 9) {
      case 0:
        Op = e::addiw(R5(), R5(), I12());
        break;
      case 1:
        Op = e::slliw(R5(), R5(), unsigned(Rng() % 32));
        break;
      case 2:
        Op = e::srliw(R5(), R5(), unsigned(Rng() % 32));
        break;
      case 3:
        Op = e::sraiw(R5(), R5(), unsigned(Rng() % 32));
        break;
      case 4:
        Op = e::addw(R5(), R5(), R5());
        break;
      case 5:
        Op = e::subw(R5(), R5(), R5());
        break;
      case 6:
        Op = e::sllw(R5(), R5(), R5());
        break;
      case 7:
        Op = e::srlw(R5(), R5(), R5());
        break;
      default:
        Op = e::sraw(R5(), R5(), R5());
        break;
      }
      break;
    }

    isla::ExecResult R =
        Ex.run(isla::OpcodeSpec::concrete(Op), isla::Assumptions());
    ASSERT_TRUE(R.Ok) << BitVec(32, Op).toHexString() << ": " << R.Error;
    support::RunLimits Limits = fuzzLimits();
    validation::ValidationResult VR = validation::validateInstruction(
        models::rv64Model(), TB, Op, isla::Assumptions(), R.Trace, "PC",
        /*RandomTrials=*/3, Op ^ uint64_t(GetParam()), &Limits);
    EXPECT_TRUE(VR.Ok) << BitVec(32, Op).toHexString() << ": " << VR.Error;
    EXPECT_EQ(VR.PathsCovered, VR.Paths) << BitVec(32, Op).toHexString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4));

//===----------------------------------------------------------------------===//
// Guard threading (the ROADMAP follow-up): a fired guard must surface as an
// attributed infrastructure Diag, never a hang, a crash, or a silent pass.
//===----------------------------------------------------------------------===//

TEST(GuardedValidation, ExpiredDeadlineAttributed) {
  namespace e = arch::rv64::enc;
  smt::TermBuilder TB;
  isla::Executor Ex(models::rv64Model(), TB);
  uint32_t Op = e::addi(5, 6, 42);
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(Op), isla::Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;

  support::RunLimits L;
  L.InstrSeconds = 1e-9; // already expired when validation starts
  validation::ValidationResult VR = validation::validateInstruction(
      models::rv64Model(), TB, Op, isla::Assumptions(), R.Trace, "PC", 3, 1,
      &L);
  EXPECT_FALSE(VR.Ok);
  EXPECT_EQ(VR.D.Code, support::ErrorCode::DeadlineExceeded);
  EXPECT_TRUE(support::isInfrastructureError(VR.D.Code));
}

TEST(GuardedValidation, CancelledTokenAttributed) {
  namespace e = arch::rv64::enc;
  smt::TermBuilder TB;
  isla::Executor Ex(models::rv64Model(), TB);
  uint32_t Op = e::addi(5, 6, 42);
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(Op), isla::Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;

  support::CancelToken Cancel = support::CancelToken::create();
  Cancel.requestCancel();
  validation::ValidationResult VR = validation::validateInstruction(
      models::rv64Model(), TB, Op, isla::Assumptions(), R.Trace, "PC", 3, 1,
      nullptr, Cancel);
  EXPECT_FALSE(VR.Ok);
  EXPECT_EQ(VR.D.Code, support::ErrorCode::Cancelled);
}

TEST(GuardedValidation, GenerousGuardsDoNotPerturb) {
  namespace e = arch::rv64::enc;
  smt::TermBuilder TB;
  isla::Executor Ex(models::rv64Model(), TB);
  uint32_t Op = e::sltu(3, 4, 5);
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(Op), isla::Assumptions());
  ASSERT_TRUE(R.Ok) << R.Error;

  validation::ValidationResult Bare = validation::validateInstruction(
      models::rv64Model(), TB, Op, isla::Assumptions(), R.Trace, "PC", 3, 7);
  support::RunLimits L = fuzzLimits();
  validation::ValidationResult Guarded = validation::validateInstruction(
      models::rv64Model(), TB, Op, isla::Assumptions(), R.Trace, "PC", 3, 7,
      &L, support::CancelToken::create());
  EXPECT_TRUE(Bare.Ok) << Bare.Error;
  EXPECT_TRUE(Guarded.Ok) << Guarded.Error;
  EXPECT_EQ(Bare.Paths, Guarded.Paths);
  EXPECT_EQ(Bare.PathsCovered, Guarded.PathsCovered);
  EXPECT_EQ(Bare.Trials, Guarded.Trials);
}

} // namespace
