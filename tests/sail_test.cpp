//===- tests/sail_test.cpp - Mini-Sail frontend and interpreter tests --------===//

#include "sail/Interpreter.h"
#include "models/Models.h"
#include "sail/Parser.h"
#include "sail/Printer.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::sail;
using islaris::itl::MachineState;
using islaris::itl::Reg;
using smt::Value;

namespace {

/// A toy model with enough structure to exercise every language feature:
/// banked register selection, flags computed via a wide AddWithCarry,
/// struct registers, slicing, memory access, and throw.
const char *ToyModel = R"(
register PSTATE : struct { EL : bits(2), SP : bits(1), N : bits(1),
                           Z : bits(1), C : bits(1), V : bits(1) }
register SP_EL0 : bits(64)
register SP_EL2 : bits(64)
register X0 : bits(64)
register PC : bits(64)

function aget_SP() -> bits(64) = {
  if PSTATE.SP == 0b0 then { return SP_EL0; }
  else {
    if PSTATE.EL == 0b00 then { return SP_EL0; }
    else if PSTATE.EL == 0b10 then { return SP_EL2; }
    else { throw("unsupported EL"); }
  };
}

function aset_SP(value : bits(64)) -> unit = {
  if PSTATE.SP == 0b0 then { SP_EL0 = value; }
  else {
    if PSTATE.EL == 0b00 then { SP_EL0 = value; }
    else if PSTATE.EL == 0b10 then { SP_EL2 = value; }
    else { throw("unsupported EL"); }
  };
}

function AddWithCarry(x : bits(64), y : bits(64), carry_in : bits(1))
    -> bits(68) = {
  let usum = zero_extend(x, 65) + zero_extend(y, 65)
           + zero_extend(carry_in, 65);
  let ssum = sign_extend(x, 65) + sign_extend(y, 65)
           + zero_extend(carry_in, 65);
  let result = usum[63 .. 0];
  let n = result[63];
  let z = if result == 0x0000000000000000 then 0b1 else 0b0;
  let c = if zero_extend(result, 65) == usum then 0b0 else 0b1;
  let v = if sign_extend(result, 65) == ssum then 0b0 else 0b1;
  return result @ n @ z @ c @ v;
}

function add_sp_imm(imm : bits(64)) -> unit = {
  let op1 = aget_SP();
  let res = AddWithCarry(op1, imm, 0b0);
  aset_SP(res[67 .. 4]);
  PC = PC + 0x0000000000000004;
}

function demo_mem(addr : bits(64)) -> unit = {
  let b = read_mem(addr, 1);
  write_mem(addr + 0x0000000000000001, b ^ 0xff, 1);
}

function demo_misc(x : bits(8)) -> bits(8) = {
  var acc = x;
  if acc <u 0x10 then { acc = acc << 1; } else { acc = reverse_bits(acc); };
  assert(acc == acc, "trivial");
  return acc;
}
)";

std::unique_ptr<Model> parseToy() {
  std::string Err;
  auto M = parseModel(ToyModel, Err);
  EXPECT_TRUE(M != nullptr) << Err;
  return M;
}

TEST(SailParserTest, ParsesToyModel) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  EXPECT_EQ(M->Registers.size(), 5u);
  EXPECT_EQ(M->Functions.size(), 6u);
  ASSERT_TRUE(M->findRegister("PSTATE"));
  EXPECT_TRUE(M->findRegister("PSTATE")->IsStruct);
  EXPECT_EQ(M->findRegister("PSTATE")->fieldWidth("EL"), 2u);
  ASSERT_TRUE(M->findFunction("AddWithCarry"));
  EXPECT_EQ(M->findFunction("AddWithCarry")->RetTy, Type::bits(68));
  EXPECT_GT(M->SourceLines, 40u);
}

TEST(SailParserTest, RejectsTypeErrors) {
  std::string Err;
  // Width mismatch in +.
  EXPECT_EQ(parseModel("function f(x : bits(8)) -> bits(8) = {"
                       " return x + 0x0011; }",
                       Err),
            nullptr);
  EXPECT_NE(Err.find("equal-width"), std::string::npos) << Err;
  // Unknown name.
  EXPECT_EQ(parseModel("function f() -> unit = { y = 0x00; }", Err), nullptr);
  // Bool condition required.
  EXPECT_EQ(parseModel("function f(x : bits(8)) -> unit = {"
                       " if x then { } else { }; }",
                       Err),
            nullptr);
  // Assignment to immutable let.
  EXPECT_EQ(parseModel("function f() -> unit = {"
                       " let x = 0x01; x = 0x02; }",
                       Err),
            nullptr);
  // Return type mismatch.
  EXPECT_EQ(parseModel("function f() -> bits(8) = { return true; }", Err),
            nullptr);
  // Slice out of range.
  EXPECT_EQ(parseModel("function f(x : bits(8)) -> bits(4) = {"
                       " return x[11 .. 8]; }",
                       Err),
            nullptr);
  // Bare decimal literal as a value.
  EXPECT_EQ(parseModel("function f() -> unit = { let x = 42; }", Err),
            nullptr);
}

TEST(SailParserTest, RejectsSyntaxErrors) {
  std::string Err;
  EXPECT_EQ(parseModel("function f( -> unit = { }", Err), nullptr);
  EXPECT_EQ(parseModel("register X bits(64)", Err), nullptr);
  EXPECT_EQ(parseModel("banana", Err), nullptr);
  EXPECT_EQ(parseModel("function f() -> unit = { let x = 0x1 }", Err),
            nullptr);
}

MachineState toyState(uint64_t El, uint64_t SpSel) {
  MachineState S;
  S.PcReg = "PC";
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, El)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, SpSel)));
  S.setReg(Reg("SP_EL0"), Value(BitVec(64, 0x7000)));
  S.setReg(Reg("SP_EL2"), Value(BitVec(64, 0x9000)));
  S.setReg(Reg("X0"), Value(BitVec(64, 0)));
  S.setReg(Reg("PC"), Value(BitVec(64, 0x80000)));
  return S;
}

TEST(SailInterpTest, BankedStackPointerSelection) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  Interpreter I(*M);

  // EL2 with SP=1 uses SP_EL2.
  MachineState S = toyState(2, 1);
  auto R = I.callFunction("add_sp_imm", {Value(BitVec(64, 0x40))}, S);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(S.getReg(Reg("SP_EL2"))->asBitVec().toUInt64(), 0x9040u);
  EXPECT_EQ(S.getReg(Reg("SP_EL0"))->asBitVec().toUInt64(), 0x7000u);
  EXPECT_EQ(S.getReg(Reg("PC"))->asBitVec().toUInt64(), 0x80004u);

  // SP=0 banks to SP_EL0 regardless of EL.
  MachineState S2 = toyState(2, 0);
  R = I.callFunction("add_sp_imm", {Value(BitVec(64, 0x40))}, S2);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(S2.getReg(Reg("SP_EL0"))->asBitVec().toUInt64(), 0x7040u);
  EXPECT_EQ(S2.getReg(Reg("SP_EL2"))->asBitVec().toUInt64(), 0x9000u);
}

TEST(SailInterpTest, ThrowSurfacesAsError) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  Interpreter I(*M);
  MachineState S = toyState(3, 1); // EL3 unsupported in the toy model
  auto R = I.callFunction("add_sp_imm", {Value(BitVec(64, 0x40))}, S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unsupported EL"), std::string::npos);
}

TEST(SailInterpTest, AddWithCarryFlags) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  Interpreter I(*M);
  MachineState S = toyState(0, 0);

  // Use demo wrapper indirectly: call AddWithCarry via add_sp_imm result is
  // hidden, so test the flag logic through a direct helper model instead.
  // 0xffff...ff + 1 = 0 with carry out and zero flag.
  std::string Err;
  auto M2 = parseModel(R"(
function AddWithCarry(x : bits(64), y : bits(64), carry_in : bits(1))
    -> bits(68) = {
  let usum = zero_extend(x, 65) + zero_extend(y, 65)
           + zero_extend(carry_in, 65);
  let ssum = sign_extend(x, 65) + sign_extend(y, 65)
           + zero_extend(carry_in, 65);
  let result = usum[63 .. 0];
  let n = result[63];
  let z = if result == 0x0000000000000000 then 0b1 else 0b0;
  let c = if zero_extend(result, 65) == usum then 0b0 else 0b1;
  let v = if sign_extend(result, 65) == ssum then 0b0 else 0b1;
  return result @ n @ z @ c @ v;
}
register OUT : bits(68)
function run(x : bits(64), y : bits(64)) -> unit = {
  OUT = AddWithCarry(x, y, 0b0);
}
)",
                       Err);
  ASSERT_TRUE(M2) << Err;
  Interpreter I2(*M2);
  MachineState S2;
  S2.setReg(Reg("OUT"), Value(BitVec(68, 0)));
  auto R = I2.callFunction(
      "run",
      {Value(BitVec::ones(64)), Value(BitVec(64, 1))}, S2);
  ASSERT_TRUE(R.Ok) << R.Error;
  BitVec Out = S2.getReg(Reg("OUT"))->asBitVec();
  EXPECT_TRUE(Out.extract(67, 4).isZero());       // result == 0
  EXPECT_EQ(Out.extract(3, 3).toUInt64(), 0u);    // N clear
  EXPECT_EQ(Out.extract(2, 2).toUInt64(), 1u);    // Z set
  EXPECT_EQ(Out.extract(1, 1).toUInt64(), 1u);    // C set (carry out)
  EXPECT_EQ(Out.extract(0, 0).toUInt64(), 0u);    // V clear
}

TEST(SailInterpTest, MemoryBuiltinsAndMmio) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  struct O : itl::MmioOracle {
    BitVec mmioRead(uint64_t, unsigned N) override {
      return BitVec(N * 8, 0x77);
    }
  } Oracle;
  Interpreter I(*M, &Oracle);

  MachineState S = toyState(0, 0);
  S.Mem[0x100] = 0x0f;
  S.Mem[0x101] = 0x00;
  auto R = I.callFunction("demo_mem", {Value(BitVec(64, 0x100))}, S);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(S.Mem.at(0x101), 0xf0u);
  EXPECT_TRUE(I.labels().empty());

  // Unmapped: read goes through the oracle, write becomes a label.
  MachineState S3 = toyState(0, 0);
  auto R2 = I.callFunction("demo_mem", {Value(BitVec(64, 0x5000))}, S3);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  ASSERT_EQ(I.labels().size(), 2u);
  EXPECT_EQ(I.labels()[0].K, itl::Label::Kind::Read);
  EXPECT_EQ(I.labels()[1].K, itl::Label::Kind::Write);
  EXPECT_EQ(I.labels()[1].Data.toUInt64(), 0x77u ^ 0xffu);
}

TEST(SailInterpTest, MutableLocalsShiftsReverseAndAssert) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  Interpreter I(*M);
  std::string Err;

  // Wrap demo_misc to observe its result via a register.
  auto M2 = parseModel(R"(
register OUT : bits(8)
function demo_misc(x : bits(8)) -> bits(8) = {
  var acc = x;
  if acc <u 0x10 then { acc = acc << 1; } else { acc = reverse_bits(acc); };
  return acc;
}
function run(x : bits(8)) -> unit = { OUT = demo_misc(x); }
)",
                       Err);
  ASSERT_TRUE(M2) << Err;
  Interpreter I2(*M2);
  MachineState S;
  S.setReg(Reg("OUT"), Value(BitVec(8, 0)));
  ASSERT_TRUE(I2.callFunction("run", {Value(BitVec(8, 0x05))}, S).Ok);
  EXPECT_EQ(S.getReg(Reg("OUT"))->asBitVec().toUInt64(), 0x0au);
  ASSERT_TRUE(I2.callFunction("run", {Value(BitVec(8, 0x80))}, S).Ok);
  EXPECT_EQ(S.getReg(Reg("OUT"))->asBitVec().toUInt64(), 0x01u);
}

TEST(SailInterpTest, UninitializedRegisterIsError) {
  auto M = parseToy();
  ASSERT_TRUE(M);
  Interpreter I(*M);
  MachineState S; // nothing initialized
  auto R = I.callFunction("add_sp_imm", {Value(BitVec(64, 4))}, S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("uninitialized register"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Pretty printer round trips.
//===----------------------------------------------------------------------===//

namespace {

TEST(SailPrinterTest, ToyModelRoundTrips) {
  std::string Err;
  auto M1 = parseModel(ToyModel, Err);
  ASSERT_TRUE(M1) << Err;
  std::string P1 = printModel(*M1);
  auto M2 = parseModel(P1, Err);
  ASSERT_TRUE(M2) << Err << "\nprinted source:\n" << P1;
  EXPECT_EQ(printModel(*M2), P1); // idempotent
  EXPECT_EQ(M2->Registers.size(), M1->Registers.size());
  EXPECT_EQ(M2->Functions.size(), M1->Functions.size());
}

TEST(SailPrinterTest, FullIsaModelsRoundTrip) {
  for (const sail::Model *M :
       {&islaris::models::aarch64Model(), &islaris::models::rv64Model()}) {
    std::string P1 = printModel(*M);
    std::string Err;
    auto M2 = parseModel(P1, Err);
    ASSERT_TRUE(M2) << Err;
    EXPECT_EQ(printModel(*M2), P1);
    EXPECT_EQ(M2->Registers.size(), M->Registers.size());
    EXPECT_EQ(M2->Functions.size(), M->Functions.size());
  }
}

TEST(SailPrinterTest, ReprintedModelBehavesIdentically) {
  // The reprinted Armv8-A model must execute identically: run the Fig. 3
  // opcode through both.
  std::string P = printModel(islaris::models::aarch64Model());
  std::string Err;
  auto M2 = parseModel(P, Err);
  ASSERT_TRUE(M2) << Err;
  MachineState S;
  S.PcReg = "_PC";
  for (int I = 0; I <= 30; ++I)
    S.setReg(Reg("R" + std::to_string(I)), Value(BitVec(64, 7 * I)));
  for (const char *F : {"N", "Z", "C", "V", "D", "A", "I", "F"})
    S.setReg(Reg("PSTATE", F), Value(BitVec(1, 0)));
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 2)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
  S.setReg(Reg("SP_EL2"), Value(BitVec(64, 0x9000)));
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x80000)));
  MachineState S2 = S;
  Interpreter I1(islaris::models::aarch64Model());
  Interpreter I2(*M2);
  ASSERT_TRUE(
      I1.callFunction("decode", {Value(BitVec(32, 0x910103ff))}, S).Ok);
  ASSERT_TRUE(
      I2.callFunction("decode", {Value(BitVec(32, 0x910103ff))}, S2).Ok);
  EXPECT_EQ(S.getReg(Reg("SP_EL2"))->asBitVec().toUInt64(),
            S2.getReg(Reg("SP_EL2"))->asBitVec().toUInt64());
  EXPECT_EQ(S2.getReg(Reg("SP_EL2"))->asBitVec().toUInt64(), 0x9040u);
}

} // namespace
