//===- tests/negative_test.cpp - Unsound specs must be rejected -----------------===//
//
// End-to-end rejection tests: each case takes a real verified setup and
// perturbs one thing — a postcondition value, a missing chunk, a violated
// Isla assumption, a wrong loop invariant, a too-weak IO specification —
// and checks that the engine fails with a diagnostic pointing at the
// right proof rule.  Soundness of the automation is exactly "these never
// pass".
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/Verifier.h"
#include "seplogic/IoSpec.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace islaris;
using islaris::itl::Reg;
using islaris::seplogic::IoSpecNode;
using islaris::seplogic::Spec;
using smt::Term;

namespace {

/// A tiny verified baseline: `add x0, x0, #5; ret`, with a perturbable
/// postcondition increment.
struct AddFixture {
  frontend::Verifier V{frontend::aarch64()};
  // The engine keeps references to registered specs, so the fixture owns
  // them for its own lifetime.
  std::vector<std::unique_ptr<Spec>> Owned;
  AddFixture() {
    namespace e = arch::aarch64::enc;
    V.addCode({{0x1000, e::addImm(0, 0, 5)}, {0x1004, e::ret()}});
    std::string Err;
    EXPECT_TRUE(V.generateTraces(Err)) << Err;
  }

  bool verify(uint64_t ClaimedIncrement, bool OmitX30 = false) {
    smt::TermBuilder &TB = V.builder();
    Owned.push_back(std::make_unique<Spec>(V.makeSpec("post")));
    Spec *Post = Owned.back().get();
    const Term *PX = Post->param(64, "px");
    Post->reg(Reg("R0"), TB.bvAdd(PX, TB.constBV(64, ClaimedIncrement)));
    Owned.push_back(std::make_unique<Spec>(V.makeSpec("entry")));
    Spec *Entry = Owned.back().get();
    const Term *X = Entry->evar(64, "x");
    const Term *R = Entry->evar(64, "r");
    Entry->reg(Reg("R0"), X);
    if (!OmitX30)
      Entry->reg(Reg("R30"), R);
    Entry->instrPre(R, Post, {X});
    V.engine().registerSpec(0x1000, Entry);
    return V.engine().verifyAll();
  }
};

TEST(NegativeTest, CorrectIncrementVerifies) {
  AddFixture F;
  EXPECT_TRUE(F.verify(5)) << F.V.engine().error();
}

TEST(NegativeTest, WrongPostIncrementFails) {
  AddFixture F;
  EXPECT_FALSE(F.verify(6));
  EXPECT_NE(F.V.engine().error().find("cannot prove"), std::string::npos)
      << F.V.engine().error();
}

TEST(NegativeTest, MissingLinkRegisterChunkFails) {
  // Without x30 ownership, the ret's register read has no chunk.
  AddFixture F;
  EXPECT_FALSE(F.verify(5, /*OmitX30=*/true));
  EXPECT_NE(F.V.engine().error().find("points-to"), std::string::npos)
      << F.V.engine().error();
}

TEST(NegativeTest, ViolatedIslaAssumptionFails) {
  // Trace generated under EL=2, but the spec supplies EL=1: the
  // assume-reg obligation must fail (hoare-assume-reg).
  namespace e = arch::aarch64::enc;
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{0x1000, e::addImm(31, 31, 0x40)}}); // add sp, sp, #0x40
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  smt::TermBuilder &TB = V.builder();

  Spec Post = V.makeSpec("post");
  Spec Entry = V.makeSpec("entry");
  Entry.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01)); // wrong EL
  Entry.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Entry.regAny(Reg("SP_EL2"));
  Entry.instrPre(TB.constBV(64, 0x1004), &Post);
  V.engine().registerSpec(0x1000, &Entry);
  EXPECT_FALSE(V.engine().verifyAll());
  EXPECT_NE(V.engine().error().find("assume-reg"), std::string::npos)
      << V.engine().error();
}

TEST(NegativeTest, WrongLoopInvariantFails) {
  // A countdown loop whose invariant claims x0 stays *equal* to its
  // initial value: re-proving it at the back edge must fail.
  namespace e = arch::aarch64::enc;
  frontend::Verifier V(frontend::aarch64());
  arch::aarch64::Asm A;
  A.org(0x1000);
  A.label("loop");
  A.cbz(0, "done");
  A.put(e::subImm(0, 0, 1));
  A.b("loop");
  A.label("done");
  A.put(e::ret());
  V.addCode(A.finish());
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;


  Spec Post = V.makeSpec("post");
  Spec Inv = V.makeSpec("inv");
  const Term *N = Inv.evar(64, "n");
  const Term *R = Inv.evar(64, "r");
  Inv.reg(Reg("R0"), N).reg(Reg("R30"), R);
  // The bogus bit: claims x0 == n forever via a pure pin to an evar used
  // in the continuation args, which the back edge (x0 = n-1) breaks.
  Inv.instrPre(R, &Post, {N});
  const Term *PN = Post.param(64, "pn");
  Post.reg(Reg("R0"), PN); // "returns with x0 == the loop-head value"
  V.engine().registerSpec(0x1000, &Inv);
  EXPECT_FALSE(V.engine().verifyAll());
}

TEST(NegativeTest, MmioWriteOfWrongValueFails) {
  // An IO spec that requires writing 'A', against code writing 'B'.
  namespace e = arch::aarch64::enc;
  constexpr uint64_t Io = 0x3f215040;
  frontend::Verifier V(frontend::aarch64());
  arch::aarch64::Asm A;
  A.org(0x2000);
  A.put(e::movz(0, 'B'));
  A.put(e::movz(3, Io & 0xffff));
  A.put(e::movk(3, uint16_t(Io >> 16), 1));
  A.put(e::strImm(2, 0, 3, 0));
  A.put(e::ret());
  V.addCode(A.finish());
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  smt::TermBuilder &TB = V.builder();

  Spec Post = V.makeSpec("post");
  Spec Entry = V.makeSpec("entry");
  const Term *R = Entry.evar(64, "r");
  Entry.regAny(Reg("R0")).regAny(Reg("R3")).reg(Reg("R30"), R);
  Entry.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01));
  Entry.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Entry.reg(Reg("SCTLR_EL1"), TB.constBV(64, 0));
  Entry.mmio(Io, 4);
  Entry.io(IoSpecNode::writeStep(
      Io, 4,
      [](const Term *V2, smt::TermBuilder &TB2) {
        return TB2.eqTerm(V2, TB2.constBV(32, 'A')); // requires 'A'
      },
      IoSpecNode::done()));
  Entry.instrPre(R, &Post);
  V.engine().registerSpec(0x2000, &Entry);
  EXPECT_FALSE(V.engine().verifyAll());
  EXPECT_NE(V.engine().error().find("IO specification"), std::string::npos)
      << V.engine().error();
}

TEST(NegativeTest, MemoryWriteOutsideOwnershipFails) {
  namespace e = arch::aarch64::enc;
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{0x3000, e::strImm(0, 0, 1, 0)}}); // strb w0, [x1]
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  smt::TermBuilder &TB = V.builder();

  Spec Post = V.makeSpec("post");
  Spec Entry = V.makeSpec("entry");
  const Term *P = Entry.evar(64, "p");
  const Term *Q = Entry.evar(64, "q");
  Entry.regAny(Reg("R0")).reg(Reg("R1"), P);
  // Ownership of a *different* byte (q), with nothing tying p to q.
  Entry.mem(Q, Entry.evar(8, "b"), 1);
  Entry.instrPre(TB.constBV(64, 0x3004), &Post);
  V.engine().registerSpec(0x3000, &Entry);
  EXPECT_FALSE(V.engine().verifyAll());
  EXPECT_NE(V.engine().error().find("matches no"), std::string::npos)
      << V.engine().error();
}

} // namespace
