//===- tests/netchaos_test.cpp - Hostile-network islarisd tests ----------------===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
// The hostile-network contract (PR 8), end to end:
//
//  - transport: the endpoint grammar, TCP listeners with ephemeral ports,
//    and the probe-first Unix bind (a second daemon refuses to steal a
//    live daemon's socket; a stale socket is reclaimed);
//  - FrameReader under adversarial delivery: splits at every byte
//    boundary, interleaved heartbeats, and precise attribution of each
//    malformed region — never a hang;
//  - Backoff: deterministic seeded jitter, the cap, retry-after hints;
//  - chaos: requests crossing a fault-injecting proxy (splits, delays,
//    corruption, resets) finish bit-identical to a direct run or as
//    cleanly attributed failures — the proxy can be killed mid-stream and
//    the server still drains with clean-shutdown markers;
//  - overload: a flooding client is shed with retry-after hints while the
//    server keeps serving; deadlines expire queued work; half-open
//    connections are reaped; heartbeats flow both ways.
//
// Every live-server test runs against a throwaway store in a TempDir, so
// nothing touches the user's real cache.
//
//===----------------------------------------------------------------------===//

#include "server/ChaosProxy.h"
#include "server/Client.h"
#include "server/Server.h"
#include "server/Transport.h"

#include "cache/Scrub.h"
#include "support/Backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace islaris;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  std::string Path;
  TempDir() {
    char T[] = "/tmp/islaris-net-XXXXXX";
    Path = ::mkdtemp(T);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

server::ServerConfig baseConfig(const TempDir &D) {
  server::ServerConfig C;
  C.SocketPath = D.Path + "/d.sock";
  C.CacheDir = D.Path + "/cache";
  C.Workers = 1;
  // Tighten the hostile-network knobs so tests observe them in seconds.
  C.WriteTimeoutSeconds = 5;
  C.HeartbeatSeconds = 0.1;
  C.HalfOpenReapSeconds = 0; // individual tests opt in
  return C;
}

/// add x0, x0, #imm — a distinct, cheap, concrete execution per imm.
server::TraceRequest addImm(unsigned Imm) {
  server::TraceRequest T;
  T.Arch = "aarch64";
  T.Opcode = 0x91000000u | ((Imm & 0xfffu) << 10);
  return T;
}

server::ClientOptions chaosClientOptions(uint64_t Seed) {
  server::ClientOptions O;
  O.MaxAttempts = 25;
  O.BackoffBaseSeconds = 0.01;
  O.BackoffCapSeconds = 0.25;
  O.SilenceTimeoutSeconds = 5;
  O.HeartbeatSeconds = 0.1;
  O.Seed = Seed;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Endpoint grammar.
//===----------------------------------------------------------------------===//

TEST(EndpointTest, Grammar) {
  server::Endpoint E;
  std::string Err;

  ASSERT_TRUE(server::parseEndpoint("/tmp/x.sock", E, Err));
  EXPECT_EQ(E.K, server::Endpoint::Kind::Unix);
  EXPECT_EQ(E.str(), "/tmp/x.sock");

  ASSERT_TRUE(server::parseEndpoint("127.0.0.1:8421", E, Err));
  EXPECT_EQ(E.K, server::Endpoint::Kind::Tcp);
  EXPECT_EQ(E.Host, "127.0.0.1");
  EXPECT_EQ(E.Port, 8421);

  // Bare ":port" binds loopback, not wildcard: chaos tests must not open
  // the machine to the network by accident.
  ASSERT_TRUE(server::parseEndpoint(":9000", E, Err));
  EXPECT_EQ(E.K, server::Endpoint::Kind::Tcp);
  EXPECT_EQ(E.Host, "127.0.0.1");

  // Relative paths and colon-bearing non-numeric tails stay Unix paths.
  ASSERT_TRUE(server::parseEndpoint("./rel.sock", E, Err));
  EXPECT_EQ(E.K, server::Endpoint::Kind::Unix);
  ASSERT_TRUE(server::parseEndpoint("host:notaport", E, Err));
  EXPECT_EQ(E.K, server::Endpoint::Kind::Unix);

  EXPECT_FALSE(server::parseEndpoint("", E, Err));
  EXPECT_FALSE(server::parseEndpoint("h:70000", E, Err));
}

//===----------------------------------------------------------------------===//
// Backoff policy.
//===----------------------------------------------------------------------===//

TEST(BackoffTest, DeterministicSeededJitter) {
  support::Backoff A(0.1, 2.0, 42), B(0.1, 2.0, 42), C(0.1, 2.0, 43);
  std::vector<double> SA, SB, SC;
  for (int I = 0; I < 8; ++I) {
    SA.push_back(A.next());
    SB.push_back(B.next());
    SC.push_back(C.next());
  }
  EXPECT_EQ(SA, SB); // same seed: identical retry instants
  EXPECT_NE(SA, SC); // different seed: different jitter
}

TEST(BackoffTest, ExponentialShapeAndCap) {
  support::Backoff B(0.1, 1.0, 7);
  double Prev = 0;
  for (int I = 0; I < 12; ++I) {
    double Nominal = std::min(1.0, 0.1 * double(1 << std::min(I, 20)));
    double D = B.next();
    // Equal jitter: [nominal/2, nominal).
    EXPECT_GE(D, Nominal * 0.5 - 1e-12) << "attempt " << I;
    EXPECT_LT(D, Nominal) << "attempt " << I;
    (void)Prev;
    Prev = D;
  }
}

TEST(BackoffTest, RetryAfterHintWinsWhenLarger) {
  support::Backoff B(0.01, 0.1, 9);
  EXPECT_GE(B.next(0.5), 0.5); // server hint dominates a tiny backoff
  support::Backoff B2(10.0, 20.0, 9);
  EXPECT_GE(B2.next(0.001), 5.0); // backoff dominates a tiny hint
}

TEST(BackoffTest, ResetRestartsExponentNotJitter) {
  support::Backoff B(0.1, 100.0, 11);
  (void)B.next();
  (void)B.next();
  double Third = B.next(); // nominal 0.4
  B.reset();
  double AfterReset = B.next(); // nominal 0.1 again
  EXPECT_LT(AfterReset, Third);
  EXPECT_LT(AfterReset, 0.1);
  EXPECT_GE(AfterReset, 0.05);
}

//===----------------------------------------------------------------------===//
// FrameReader under adversarial delivery.
//===----------------------------------------------------------------------===//

TEST(FrameAdversaryTest, SplitAtEveryBoundary) {
  // One request frame with a payload that contains header-like bytes, so a
  // split can land inside the magic, the header, the payload, and the
  // terminator.  Every split point must decode identically.
  server::Frame In{server::FrameType::Request,
                   "(islaris-frame 1 fake 3 0000000000000000)\nxyz\n"};
  std::string Wire = server::encodeFrame(In);
  for (size_t Split = 0; Split <= Wire.size(); ++Split) {
    server::FrameReader R;
    R.feed(Wire.data(), Split);
    server::Frame F;
    server::FrameReader::Status S1 = R.next(F);
    if (Split < Wire.size()) {
      ASSERT_EQ(S1, server::FrameReader::Status::NeedMore)
          << "split at " << Split;
      R.feed(Wire.data() + Split, Wire.size() - Split);
      ASSERT_EQ(R.next(F), server::FrameReader::Status::Frame)
          << "split at " << Split;
    } else {
      ASSERT_EQ(S1, server::FrameReader::Status::Frame);
    }
    EXPECT_EQ(F.Type, In.Type);
    EXPECT_EQ(F.Payload, In.Payload);
    EXPECT_EQ(R.buffered(), 0u);
  }
}

TEST(FrameAdversaryTest, InterleavedHeartbeats) {
  // Heartbeats dropped between (and mid-delivery around) real frames must
  // come out as ordinary frames, leaving the data frames intact.
  std::string Wire;
  Wire += server::encodeFrame({server::FrameType::Heartbeat, ""});
  Wire += server::encodeFrame({server::FrameType::Request, "alpha"});
  Wire += server::encodeFrame({server::FrameType::Heartbeat, ""});
  Wire += server::encodeFrame({server::FrameType::Heartbeat, ""});
  Wire += server::encodeFrame({server::FrameType::Done, "omega"});
  Wire += server::encodeFrame({server::FrameType::Heartbeat, ""});

  server::FrameReader R;
  std::vector<server::Frame> Out;
  for (size_t I = 0; I < Wire.size(); I += 3) { // 3-byte trickle
    size_t N = std::min<size_t>(3, Wire.size() - I);
    R.feed(Wire.data() + I, N);
    server::Frame F;
    while (R.next(F) == server::FrameReader::Status::Frame)
      Out.push_back(F);
  }
  ASSERT_EQ(Out.size(), 6u);
  unsigned Beats = 0;
  for (const server::Frame &F : Out)
    if (F.Type == server::FrameType::Heartbeat)
      ++Beats;
  EXPECT_EQ(Beats, 4u);
  EXPECT_EQ(Out[1].Payload, "alpha");
  EXPECT_EQ(Out[4].Payload, "omega");
}

TEST(FrameAdversaryTest, EveryCorruptionAttributed) {
  // Flip each byte of a valid frame in turn: the reader must answer every
  // mutation with Frame-then-garbage, Malformed, or NeedMore — immediately,
  // never by waiting for bytes that cannot help.
  std::string Wire =
      server::encodeFrame({server::FrameType::Request, "payload-bytes"});
  unsigned MalformedSeen = 0;
  for (size_t I = 0; I < Wire.size(); ++I) {
    std::string Mut = Wire;
    Mut[I] = char(Mut[I] ^ 0x5a);
    server::FrameReader R;
    R.feed(Mut.data(), Mut.size());
    server::Frame F;
    std::string Err;
    server::FrameReader::Status S = R.next(F, &Err);
    if (S == server::FrameReader::Status::Malformed) {
      ++MalformedSeen;
      EXPECT_FALSE(Err.empty()) << "mutation at byte " << I;
      // A dead stream stays dead: feeding more bytes cannot resurrect it.
      R.feed(Wire.data(), Wire.size());
      EXPECT_EQ(R.next(F), server::FrameReader::Status::Malformed);
    } else if (S == server::FrameReader::Status::Frame) {
      // A flip inside the payload is caught by the checksum, so a whole
      // frame can only emerge when the flip landed in... nowhere: header
      // and payload are both covered.  The only legal Frame outcome is a
      // *different* but self-consistent frame, which a single bit flip of
      // length/checksum digits cannot produce together.  Treat as failure.
      ADD_FAILURE() << "corrupt frame decoded at byte " << I;
    }
    // NeedMore is legal: a flip can lengthen the advertised payload, and
    // the reader is entitled to wait for it (the length bound and the
    // checksum still gate acceptance).
  }
  EXPECT_GT(MalformedSeen, Wire.size() / 2);
}

//===----------------------------------------------------------------------===//
// TCP transport + stale-socket policy.
//===----------------------------------------------------------------------===//

TEST(TcpTransportTest, TraceOverEphemeralTcp) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0"; // ephemeral: no fixed-port collisions
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  server::Endpoint Bound = S.boundEndpoint();
  EXPECT_EQ(Bound.K, server::Endpoint::Kind::Tcp);
  ASSERT_NE(Bound.Port, 0) << "port 0 must resolve to the kernel's choice";

  server::Client C;
  ASSERT_TRUE(C.connect(Bound.str(), Err)) << Err;
  server::Client::TraceResult R1, R2;
  ASSERT_TRUE(C.runTrace(addImm(1), R1, Err)) << Err;
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Done.Source, "fresh");
  ASSERT_TRUE(C.runTrace(addImm(1), R2, Err)) << Err;
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Done.Source, "warm");
  // Same bytes cold and warm: the wire changes nothing about results.
  EXPECT_EQ(R1.EntryText, R2.EntryText);

  S.requestShutdown();
  S.wait();
}

TEST(StaleSocketTest, SecondDaemonRefusesLiveSocket) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  server::Server S1(Cfg);
  std::string Err;
  ASSERT_TRUE(S1.start(Err)) << Err;

  // A second daemon on the same path must refuse, not steal.
  server::ServerConfig Cfg2 = baseConfig(D);
  Cfg2.CacheDir = D.Path + "/cache2";
  {
    server::Server S2(Cfg2);
    std::string Err2;
    EXPECT_FALSE(S2.start(Err2));
    EXPECT_NE(Err2.find("live daemon"), std::string::npos) << Err2;
  }

  // The first daemon is untouched by the refused bind.
  server::Client C;
  ASSERT_TRUE(C.connect(Cfg.SocketPath, Err)) << Err;
  EXPECT_TRUE(C.ping(Err)) << Err;
  C.close();
  S1.requestShutdown();
  S1.wait();
}

TEST(StaleSocketTest, StaleSocketReclaimed) {
  TempDir D;
  std::string Path = D.Path + "/stale.sock";
  // Manufacture a stale socket: bind without listening, then abandon the
  // fd — exactly the residue of a daemon that died without cleanup.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr), 0);
  ::close(Fd);
  EXPECT_FALSE(server::unixSocketAlive(Path));

  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = Path;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err; // reclaimed, not refused
  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Chaos: the proxy between client and server.
//===----------------------------------------------------------------------===//

TEST(ChaosTest, TracesBitIdenticalThroughHostileProxy) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0";
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::ChaosConfig CC;
  CC.Seed = 1234;
  CC.SplitProb = 0.4;
  CC.DelayProb = 0.3;
  CC.DelayMaxMs = 5;
  CC.CorruptProb = 0.05;
  CC.ResetProb = 0.02;
  server::ChaosProxy P(CC);
  ASSERT_TRUE(P.start("127.0.0.1:0", S.boundEndpoint().str(), Err)) << Err;

  // Direct (clean) answers first, as ground truth.
  std::vector<std::string> Direct;
  {
    server::Client C;
    ASSERT_TRUE(C.connect(S.boundEndpoint().str(), Err)) << Err;
    for (unsigned Imm = 1; Imm <= 6; ++Imm) {
      server::Client::TraceResult R;
      ASSERT_TRUE(C.runTrace(addImm(Imm), R, Err)) << Err;
      ASSERT_TRUE(R.Ok);
      Direct.push_back(R.EntryText);
    }
  }

  // Same requests through the hostile proxy: every one must complete (the
  // retry loop absorbs injected faults) and answer bit-identically.
  server::Client C(chaosClientOptions(99));
  ASSERT_TRUE(C.connect(P.boundEndpoint().str(), Err)) << Err;
  for (unsigned Imm = 1; Imm <= 6; ++Imm) {
    server::Client::TraceResult R;
    ASSERT_TRUE(C.runTrace(addImm(Imm), R, Err))
        << "imm " << Imm << ": " << Err;
    ASSERT_TRUE(R.Ok) << R.Done.Error;
    EXPECT_EQ(R.EntryText, Direct[Imm - 1])
        << "imm " << Imm << " diverged across the proxy";
  }

  server::ChaosStats CS = P.stats();
  EXPECT_GT(CS.Splits + CS.Delays + CS.Corruptions + CS.Resets, 0u)
      << "chaos config injected nothing; the test proved nothing";

  P.stop();
  S.requestShutdown();
  S.wait();
}

TEST(ChaosTest, ServerDrainsCleanlyAfterProxyKilledMidStream) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0";
  Cfg.ExecDelaySeconds = 0.3; // guarantee the kill lands mid-request
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  auto P = std::make_unique<server::ChaosProxy>(server::ChaosConfig{});
  ASSERT_TRUE(P->start("127.0.0.1:0", S.boundEndpoint().str(), Err)) << Err;

  server::ClientOptions CO;
  CO.MaxAttempts = 1; // no retries: we want the severed call to fail fast
  CO.SilenceTimeoutSeconds = 2;
  server::Client C(CO);
  ASSERT_TRUE(C.connect(P->boundEndpoint().str(), Err)) << Err;

  std::thread Killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    P->stop(); // mid-stream proxy death: client and server both see resets
  });
  server::Client::TraceResult R;
  bool Ok = C.runTrace(addImm(42), R, Err);
  Killer.join();
  // The severed call must fail (or squeak through if the result beat the
  // kill) — either way, promptly and attributably.  What it must NOT do is
  // hang; the ctest timeout enforces that.
  if (Ok) {
    EXPECT_TRUE(R.Ok || R.Rejected);
  }

  // The server survives the orphaned connection and still drains cleanly,
  // clean-shutdown markers included.
  S.requestShutdown();
  S.wait();
  EXPECT_TRUE(cache::hasCleanShutdownMarker(Cfg.CacheDir));
  EXPECT_TRUE(cache::hasCleanShutdownMarker(Cfg.CacheDir + "/sidecond"));
}

//===----------------------------------------------------------------------===//
// Overload shedding + per-client quotas.
//===----------------------------------------------------------------------===//

TEST(ShedTest, FloodIsShedWithRetryAfterWhilePoliteClientSucceeds) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.MaxQueueDepth = 2;
  Cfg.ExecDelaySeconds = 0.1;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Flood: distinct opcodes (no dedup), no reading of accepts — push the
  // queue past its bound as fast as the socket takes bytes.
  server::Client Flood;
  ASSERT_TRUE(Flood.connect(Cfg.SocketPath, Err)) << Err;
  for (unsigned I = 0; I < 24; ++I) {
    server::Request Req;
    Req.Id = 1000 + I;
    Req.K = server::Request::Kind::Trace;
    Req.Trace = addImm(100 + I);
    ASSERT_TRUE(Flood.send(
        {server::FrameType::Request, server::encodeRequest(Req)}, Err))
        << Err;
  }

  // Drain the flood client's frames: every request must answer accepted,
  // rejected(retry-after>0), or (for accepted ones, eventually) done.
  unsigned Sheds = 0, Accepted = 0, Dones = 0;
  uint64_t MaxHint = 0;
  server::Frame F;
  while ((Accepted == 0 || Dones < Accepted || Sheds == 0) &&
         Flood.recv(F, Err)) {
    if (F.Type == server::FrameType::Accepted)
      ++Accepted;
    else if (F.Type == server::FrameType::Rejected) {
      uint64_t Id = 0;
      std::string Body, Reason;
      uint64_t RetryMs = 0;
      ASSERT_TRUE(server::decodeIdPayload(F.Payload, Id, Body));
      server::decodeRejectBody(Body, Reason, RetryMs);
      EXPECT_NE(Reason.find("queue full"), std::string::npos);
      EXPECT_GT(RetryMs, 0u) << "sheds must carry a retry-after hint";
      MaxHint = std::max(MaxHint, RetryMs);
      ++Sheds;
    } else if (F.Type == server::FrameType::Done)
      ++Dones;
  }
  EXPECT_GT(Sheds, 0u);
  EXPECT_GT(Accepted, 0u);
  // Hints scale with queue pressure: a full queue hints above the base.
  EXPECT_GE(MaxHint, 100u);

  // A polite retrying client gets through the same storm.
  server::Client Polite(chaosClientOptions(5));
  ASSERT_TRUE(Polite.connect(Cfg.SocketPath, Err)) << Err;
  server::Client::TraceResult R;
  ASSERT_TRUE(Polite.runTrace(addImm(999), R, Err)) << Err;
  EXPECT_TRUE(R.Ok) << R.Done.Error;

  EXPECT_GT(S.stats().Shed, 0u);
  EXPECT_GE(S.stats().Rejected, S.stats().Shed);
  S.requestShutdown();
  S.wait();
}

TEST(ShedTest, PerClientQuotaIsolatesTheFlooder) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.MaxQueueDepth = 64; // global bound far away: the quota must act first
  Cfg.MaxInflightPerClient = 2;
  Cfg.ExecDelaySeconds = 0.1;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client Flood;
  ASSERT_TRUE(Flood.connect(Cfg.SocketPath, Err)) << Err;
  for (unsigned I = 0; I < 8; ++I) {
    server::Request Req;
    Req.Id = 2000 + I;
    Req.K = server::Request::Kind::Trace;
    Req.Trace = addImm(200 + I);
    ASSERT_TRUE(Flood.send(
        {server::FrameType::Request, server::encodeRequest(Req)}, Err));
  }
  unsigned QuotaSheds = 0, Accepted = 0, Dones = 0;
  server::Frame F;
  while ((Dones < Accepted || QuotaSheds == 0) && Flood.recv(F, Err)) {
    if (F.Type == server::FrameType::Accepted)
      ++Accepted;
    else if (F.Type == server::FrameType::Done)
      ++Dones;
    else if (F.Type == server::FrameType::Rejected) {
      uint64_t Id = 0;
      std::string Body, Reason;
      uint64_t RetryMs = 0;
      ASSERT_TRUE(server::decodeIdPayload(F.Payload, Id, Body));
      server::decodeRejectBody(Body, Reason, RetryMs);
      if (Reason.find("quota") != std::string::npos) {
        EXPECT_GT(RetryMs, 0u);
        ++QuotaSheds;
      }
    }
  }
  EXPECT_GT(QuotaSheds, 0u);
  EXPECT_LE(Accepted, 8u - QuotaSheds);
  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Deadlines.
//===----------------------------------------------------------------------===//

TEST(DeadlineTest, QueuedRequestExpiresServerSide) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.ExecDelaySeconds = 0.4; // each fresh execution holds the one worker
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(Cfg.SocketPath, Err)) << Err;
  // Request 1 occupies the worker; request 2's 50ms of patience dies in
  // the queue behind it.  Same connection: ordering is guaranteed.
  server::Request R1;
  R1.Id = 1;
  R1.K = server::Request::Kind::Trace;
  R1.Trace = addImm(301);
  server::Request R2;
  R2.Id = 2;
  R2.K = server::Request::Kind::Trace;
  R2.Trace = addImm(302);
  R2.DeadlineMs = 50;
  ASSERT_TRUE(
      C.send({server::FrameType::Request, server::encodeRequest(R1)}, Err));
  ASSERT_TRUE(
      C.send({server::FrameType::Request, server::encodeRequest(R2)}, Err));

  bool SawExpiry = false, SawFirstDone = false;
  server::Frame F;
  while ((!SawExpiry || !SawFirstDone) && C.recv(F, Err)) {
    if (F.Type != server::FrameType::Done)
      continue;
    server::DoneInfo DI;
    ASSERT_TRUE(server::decodeDone(F.Payload, DI));
    if (DI.Id == 1) {
      EXPECT_EQ(DI.Status, 0u);
      SawFirstDone = true;
    } else if (DI.Id == 2) {
      // Expired before execution: infrastructure status, "deadline"
      // source — never mistakable for a proof verdict.
      EXPECT_EQ(DI.Status, 2u);
      EXPECT_EQ(DI.Source, "deadline");
      SawExpiry = true;
    }
  }
  EXPECT_TRUE(SawExpiry) << Err;
  EXPECT_TRUE(SawFirstDone) << Err;
  EXPECT_GE(S.stats().DeadlineExpired, 1u);
  // The expired request never executed: exactly one fresh execution ran.
  EXPECT_EQ(S.stats().Executed, 1u);
  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Heartbeats + half-open reaping.
//===----------------------------------------------------------------------===//

TEST(HeartbeatTest, FlowInBothDirectionsDuringSlowWork) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.ExecDelaySeconds = 0.6;
  Cfg.HeartbeatSeconds = 0.1;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::ClientOptions CO;
  CO.HeartbeatSeconds = 0.1;
  server::Client C(CO);
  ASSERT_TRUE(C.connect(Cfg.SocketPath, Err)) << Err;
  server::Client::TraceResult R;
  ASSERT_TRUE(C.runTrace(addImm(77), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);

  // 600ms of in-flight waiting at 100ms intervals: both directions beat.
  EXPECT_GT(S.stats().HeartbeatsSent, 0u);
  EXPECT_GT(S.stats().HeartbeatsSeen, 0u);
  EXPECT_GT(C.netStats().HeartbeatsSent, 0u);
  EXPECT_GT(C.netStats().HeartbeatsSeen, 0u);
  S.requestShutdown();
  S.wait();
}

TEST(HalfOpenTest, SilentIdleConnectionIsReaped) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.HalfOpenReapSeconds = 0.3;
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::Client C;
  ASSERT_TRUE(C.connect(Cfg.SocketPath, Err)) << Err;
  ASSERT_TRUE(C.ping(Err)) << Err;
  // Fall silent without closing: the peer has "vanished".  The server
  // reaps once silence exceeds the threshold and nothing is in flight.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (S.openConnections() > 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(S.openConnections(), 0u);
  EXPECT_GE(S.stats().HalfOpenReaped, 1u);
  S.requestShutdown();
  S.wait();
}

TEST(HalfOpenTest, BusyConnectionIsNotReaped) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.HalfOpenReapSeconds = 0.2;
  Cfg.ExecDelaySeconds = 0.6; // in-flight work outlives the silence bound
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Heartbeats off: the connection is silent the whole 600ms wait, but its
  // one in-flight request must shield it from the reaper.
  server::ClientOptions CO;
  CO.HeartbeatSeconds = 0;
  server::Client C(CO);
  ASSERT_TRUE(C.connect(Cfg.SocketPath, Err)) << Err;
  server::Client::TraceResult R;
  ASSERT_TRUE(C.runTrace(addImm(88), R, Err)) << Err;
  EXPECT_TRUE(R.Ok) << "silent-but-waiting client was reaped mid-request";
  EXPECT_EQ(S.stats().HalfOpenReaped, 0u);
  S.requestShutdown();
  S.wait();
}

//===----------------------------------------------------------------------===//
// Fleet failover under hostile transports (PR 10).
//===----------------------------------------------------------------------===//

TEST(FailoverChaosTest, ResetStormRotatesToHealthyEndpoint) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0";
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // A proxy that resets every chunk: the first endpoint accepts dials but
  // never completes a handshake — the worst kind of "up but broken" peer.
  server::ChaosConfig CC;
  CC.Seed = 7;
  CC.ResetProb = 1.0;
  server::ChaosProxy P(CC);
  ASSERT_TRUE(P.start("127.0.0.1:0", S.boundEndpoint().str(), Err)) << Err;

  server::Client C(chaosClientOptions(21));
  ASSERT_TRUE(C.connect(P.boundEndpoint().str() + "," +
                            S.boundEndpoint().str(),
                        Err))
      << Err;
  // The broken endpoint is marked dead and the ring settled on the healthy
  // one; the success reset the shared retry backoff (a later hiccup starts
  // from the base delay again, not wherever the storm left the exponent).
  EXPECT_EQ(C.activeEndpoint(), S.boundEndpoint().str());
  EXPECT_EQ(C.retryBackoffAttempt(), 0u);

  server::Client::TraceResult R;
  ASSERT_TRUE(C.runTrace(addImm(90), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(C.retryBackoffAttempt(), 0u);

  P.stop();
  S.requestShutdown();
  S.wait();
}

TEST(FailoverChaosTest, BackoffResetsAfterMidStreamRecovery) {
  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0";
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Moderate reset rate: some attempts die mid-request and are retried
  // with growing backoff; the run must still converge bit-identically, and
  // every delivered result must leave the backoff streak at zero.
  server::ChaosConfig CC;
  CC.Seed = 4242;
  CC.ResetProb = 0.25;
  CC.SplitProb = 0.3;
  server::ChaosProxy P(CC);
  ASSERT_TRUE(P.start("127.0.0.1:0", S.boundEndpoint().str(), Err)) << Err;

  server::Client Direct;
  ASSERT_TRUE(Direct.connect(S.boundEndpoint().str(), Err)) << Err;
  server::Client C(chaosClientOptions(22));
  ASSERT_TRUE(C.connect(P.boundEndpoint().str(), Err)) << Err;
  for (unsigned Imm = 91; Imm <= 96; ++Imm) {
    server::Client::TraceResult Want, Got;
    ASSERT_TRUE(Direct.runTrace(addImm(Imm), Want, Err)) << Err;
    ASSERT_TRUE(C.runTrace(addImm(Imm), Got, Err)) << "imm " << Imm << ": "
                                                   << Err;
    EXPECT_EQ(Got.EntryText, Want.EntryText) << "imm " << Imm;
    EXPECT_EQ(C.retryBackoffAttempt(), 0u) << "imm " << Imm;
  }

  P.stop();
  S.requestShutdown();
  S.wait();
}

TEST(FailoverChaosTest, SaturatedTcpBacklogClassifiesAsTimeout) {
  // A listener that never accepts, with a zero backlog already filled by
  // squatters: further dials get their SYNs dropped and run out the
  // connect timer.  That is a *timeout*, not a refusal — the failover
  // client must charge it to the backoff budget (slow ≠ down) yet still
  // end up on the healthy endpoint.
  int Lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Lfd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = 0;
  ASSERT_EQ(::bind(Lfd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr), 0);
  ASSERT_EQ(::listen(Lfd, 0), 0);
  socklen_t Len = sizeof Addr;
  ASSERT_EQ(::getsockname(Lfd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  std::string Stuck =
      "127.0.0.1:" + std::to_string(ntohs(Addr.sin_port));

  // Fill the accept queue so later SYNs are dropped rather than accepted.
  std::vector<int> Squatters;
  for (int I = 0; I < 4; ++I) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      break;
    // Non-blocking connect: a queued (or in-progress) squat is enough.
    std::string CErr;
    server::DialError DE = server::DialError::None;
    int C = server::connectSpec(Stuck, 0.2, CErr, &DE);
    if (C >= 0)
      Squatters.push_back(C);
    ::close(Fd);
  }

  TempDir D;
  server::ServerConfig Cfg = baseConfig(D);
  Cfg.SocketPath = "127.0.0.1:0";
  server::Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  server::ClientOptions O = chaosClientOptions(23);
  O.ConnectTimeoutSeconds = 0.3; // make the timeout observable in ms
  server::Client C(O);
  ASSERT_TRUE(C.connect(Stuck + "," + S.boundEndpoint().str(), Err)) << Err;
  EXPECT_EQ(C.activeEndpoint(), S.boundEndpoint().str());
  EXPECT_GE(C.netStats().DialsTimedOut, 1u);
  EXPECT_EQ(C.netStats().DialsRefused, 0u);

  server::Client::TraceResult R;
  ASSERT_TRUE(C.runTrace(addImm(97), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);

  for (int Fd : Squatters)
    ::close(Fd);
  ::close(Lfd);
  S.requestShutdown();
  S.wait();
}
