//===- tests/frontend_test.cpp - Verifier API and objdump loader ---------------===//

#include "arch/AArch64.h"
#include "frontend/Objdump.h"
#include "frontend/Verifier.h"
#include "itl/Parser.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;

namespace {

TEST(ObjdumpTest, ParsesGnuStyleListing) {
  const char *Listing = R"(
bin:     file format elf64-littleaarch64

Disassembly of section .text:

0000000000400000 <memcpy>:
  400000:	b40000e2 	cbz	x2, 40001c <memcpy+0x1c>
  400004:	d2800003 	mov	x3, #0x0

0000000000400008 <memcpy.L3>:
  400008:	38636824 	ldrb	w4, [x1, x3]
  40000c:	38236804 	strb	w4, [x0, x3]
  400010:	91000463 	add	x3, x3, #0x1
  400014:	eb03005f 	cmp	x2, x3
  400018:	54ffff81 	b.ne	400008 <memcpy.L3>
  40001c:	d65f03c0 	ret
)";
  std::string Err;
  auto Img = parseObjdump(Listing, Err);
  ASSERT_TRUE(Img.has_value()) << Err;
  EXPECT_EQ(Img->Code.size(), 8u);
  EXPECT_EQ(Img->Code.at(0x400000), 0xb40000e2u);
  EXPECT_EQ(Img->Code.at(0x40001c), 0xd65f03c0u);
  EXPECT_EQ(Img->addrOf("memcpy"), 0x400000u);
  EXPECT_EQ(Img->addrOf("memcpy.L3"), 0x400008u);
  // The opcodes agree with our assembler for the same program.
  namespace e = arch::aarch64::enc;
  EXPECT_EQ(Img->Code.at(0x400000), e::cbz(2, 0x1c));
  EXPECT_EQ(Img->Code.at(0x400008), e::ldrReg(0, 4, 1, 3));
  EXPECT_EQ(Img->Code.at(0x400014), e::cmpReg(2, 3));
  EXPECT_EQ(Img->Code.at(0x400018),
            e::bcond(arch::aarch64::Cond::NE, -16));
}

TEST(ObjdumpTest, RejectsMalformedCodeLines) {
  std::string Err;
  EXPECT_FALSE(parseObjdump("  400000:\tzznotopcode\tjunk\n", Err));
  EXPECT_NE(Err.find("expected a 32-bit opcode"), std::string::npos);
  Err.clear();
  EXPECT_FALSE(parseObjdump("  400000:\t1\tx\n  400000:\t2\ty\n", Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST(ObjdumpTest, IgnoresNonCodeNoise) {
  std::string Err;
  auto Img = parseObjdump("random prose\n\t...\n--\n", Err);
  ASSERT_TRUE(Img.has_value()) << Err;
  EXPECT_TRUE(Img->Code.empty());
}

TEST(VerifierTest, ObjdumpDrivenVerification) {
  // End to end from a disassembly listing: load, generate traces, verify
  // a simple double for the `ret` at the end.
  const char *Listing =
      "0000000000001000 <f>:\n"
      "  1000:\t91001400 \tadd x0, x0, #0x5\n"
      "  1004:\td65f03c0 \tret\n";
  std::string Err;
  auto Img = parseObjdump(Listing, Err);
  ASSERT_TRUE(Img.has_value()) << Err;

  Verifier V(aarch64());
  V.addCode(Img->Code);
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  smt::TermBuilder &TB = V.builder();

  seplogic::Spec Post = V.makeSpec("post");
  const smt::Term *PX = Post.param(64, "px");
  Post.reg(Reg("R0"), TB.bvAdd(PX, TB.constBV(64, 5)));
  seplogic::Spec Entry = V.makeSpec("entry");
  const smt::Term *X = Entry.evar(64, "x");
  const smt::Term *R = Entry.evar(64, "r");
  Entry.reg(Reg("R0"), X).reg(Reg("R30"), R).instrPre(R, &Post, {X});
  V.engine().registerSpec(Img->addrOf("f"), &Entry);
  EXPECT_TRUE(V.engine().verifyAll()) << V.engine().error();
}

TEST(VerifierTest, GeneratedTracesRoundTripThroughTheParser) {
  // The printed form of every generated trace re-parses to the same text
  // (the paper's "deep embedding of this trace" artifact).
  namespace e = arch::aarch64::enc;
  Verifier V(aarch64());
  V.addCode({{0x1000, e::addImm(31, 31, 0x40)},
             {0x1004, e::cbz(2, 16)},
             {0x1008, e::ldrReg(0, 4, 1, 3)},
             {0x100c, e::hvc(0)}});
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  for (const auto &[Addr, T] : V.instrMap()) {
    std::string Printed = T->toString();
    smt::TermBuilder TB2;
    itl::TraceParser P(TB2);
    auto Parsed = P.parseTrace(Printed);
    ASSERT_TRUE(Parsed.has_value())
        << "at " << BitVec(64, Addr).toHexString() << ": " << P.error();
    EXPECT_EQ(Parsed->toString(), Printed);
  }
}

TEST(VerifierTest, PerAddressAssumptionsReplaceDefaults) {
  namespace e = arch::aarch64::enc;
  Verifier V(aarch64());
  V.addCode({{0x1000, e::addImm(31, 31, 1)}, {0x1004, e::addImm(31, 31, 1)}});
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  V.at(0x1004)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  // The first instruction's trace uses SP_EL2, the second SP_EL1.
  EXPECT_NE(V.traceAt(0x1000)->toString().find("SP_EL2"),
            std::string::npos);
  EXPECT_NE(V.traceAt(0x1004)->toString().find("SP_EL1"),
            std::string::npos);
  EXPECT_EQ(V.traceAt(0x1004)->toString().find("SP_EL2"),
            std::string::npos);
}



TEST(VerifierTest, IntermediateChunkSpecsSplitAProof) {
  // §2.8: "For large examples one can use intermediate specifications for
  // chunks of code" — register a spec in the middle of a straight-line
  // block; the first half proves it, the second half is verified from it.
  namespace e = arch::aarch64::enc;
  Verifier V(aarch64());
  V.addCode({{0x1000, e::addImm(0, 0, 1)},
             {0x1004, e::addImm(0, 0, 2)},
             {0x1008, e::addImm(0, 0, 3)},
             {0x100c, e::ret()}});
  std::string Err;
  ASSERT_TRUE(V.generateTraces(Err)) << Err;
  smt::TermBuilder &TB = V.builder();

  seplogic::Spec Post = V.makeSpec("post");
  const smt::Term *PX = Post.param(64, "px");
  Post.reg(Reg("R0"), TB.bvAdd(PX, TB.constBV(64, 6)));

  // The midpoint chunk spec at 0x1008: three of the six already added.
  seplogic::Spec Mid = V.makeSpec("mid");
  const smt::Term *MX = Mid.evar(64, "mx");
  const smt::Term *MR = Mid.evar(64, "mr");
  const smt::Term *MOrig = Mid.evar(64, "morig");
  Mid.reg(Reg("R0"), MX).reg(Reg("R30"), MR);
  Mid.pure(TB.eqTerm(MX, TB.bvAdd(MOrig, TB.constBV(64, 3))));
  Mid.instrPre(MR, &Post, {MOrig});

  seplogic::Spec Entry = V.makeSpec("entry");
  const smt::Term *X = Entry.evar(64, "x");
  const smt::Term *R = Entry.evar(64, "r");
  Entry.reg(Reg("R0"), X).reg(Reg("R30"), R).instrPre(R, &Post, {X});

  auto &PE = V.engine();
  PE.registerSpec(0x1000, &Entry);
  PE.registerSpec(0x1008, &Mid);
  EXPECT_TRUE(PE.verifyAll()) << PE.error();
  // The entry task stops at 0x1008 by proving Mid (one path), and the Mid
  // task carries on to the ret (another path).
  EXPECT_EQ(PE.stats().PathsVerified, 2u);
}

} // namespace
