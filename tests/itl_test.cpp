//===- tests/itl_test.cpp - ITL trace language tests --------------------------===//

#include "itl/OpSem.h"
#include "itl/Parser.h"
#include "itl/Trace.h"

#include <gtest/gtest.h>

using namespace islaris;
using namespace islaris::itl;
using smt::Sort;
using smt::Term;
using smt::Value;

namespace {

/// Builds the Fig. 3 trace of add sp,sp,64 under EL=2, SP=1 assumptions.
Trace buildAddSpTrace(smt::TermBuilder &TB, std::vector<const Term *> &Vars) {
  Trace T;
  T.Events.push_back(
      Event::assumeReg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10)));
  T.Events.push_back(
      Event::assumeReg(Reg("PSTATE", "SP"), TB.constBV(1, 1)));
  T.Events.push_back(
      Event::readReg(Reg("PSTATE", "SP"), TB.constBV(1, 1)));
  T.Events.push_back(
      Event::readReg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10)));
  const Term *V38 = TB.freshVar(Sort::bitvec(64), "v38");
  Vars.push_back(V38);
  T.Events.push_back(Event::declareConst(V38));
  T.Events.push_back(Event::readReg(Reg("SP_EL2"), V38));
  const Term *Add = TB.bvAdd(TB.extract(63, 0, TB.zeroExtend(64, V38)),
                             TB.constBV(64, 0x40));
  const Term *V61 = TB.freshVar(Sort::bitvec(64), "v61");
  Vars.push_back(V61);
  T.Events.push_back(Event::defineConst(V61, Add));
  T.Events.push_back(Event::writeReg(Reg("SP_EL2"), V61));
  const Term *V62 = TB.freshVar(Sort::bitvec(64), "v62");
  T.Events.push_back(Event::declareConst(V62));
  T.Events.push_back(Event::readReg(Reg("_PC"), V62));
  const Term *V63 = TB.freshVar(Sort::bitvec(64), "v63");
  T.Events.push_back(
      Event::defineConst(V63, TB.bvAdd(V62, TB.constBV(64, 4))));
  T.Events.push_back(Event::writeReg(Reg("_PC"), V63));
  return T;
}

TEST(TraceTest, Fig3Printing) {
  smt::TermBuilder TB;
  std::vector<const Term *> Vars;
  Trace T = buildAddSpTrace(TB, Vars);
  std::string S = T.toString();
  // Spot-check the lines of Fig. 3.
  EXPECT_NE(S.find("(assume-reg |PSTATE| ((_ field |EL|)) "
                   "(_ struct (|EL| #b10)))"),
            std::string::npos);
  EXPECT_NE(S.find("(declare-const v38 (_ BitVec 64))"), std::string::npos);
  EXPECT_NE(S.find("(read-reg |SP_EL2| nil v38)"), std::string::npos);
  EXPECT_NE(S.find("(define-const v61 (bvadd ((_ extract 63 0) "
                   "((_ zero_extend 64) v38)) #x0000000000000040))"),
            std::string::npos);
  EXPECT_NE(S.find("(write-reg |SP_EL2| nil v61)"), std::string::npos);
  EXPECT_EQ(T.countEvents(), 12u);
  EXPECT_EQ(T.countPaths(), 1u);
}

TEST(TraceTest, ParseRoundTrip) {
  smt::TermBuilder TB;
  std::vector<const Term *> Vars;
  Trace T = buildAddSpTrace(TB, Vars);
  std::string Printed = T.toString();

  smt::TermBuilder TB2;
  TraceParser P(TB2);
  auto Parsed = P.parseTrace(Printed);
  ASSERT_TRUE(Parsed.has_value()) << P.error();
  EXPECT_EQ(Parsed->toString(), Printed);
}

TEST(TraceTest, ParseCasesTrace) {
  // The Fig. 6 beq trace shape.
  const char *Text = R"((trace
  (declare-const v27 (_ BitVec 1))
  (read-reg |PSTATE| ((_ field |Z|)) (_ struct (|Z| v27)))
  (define-const v37 (= v27 #b1))
  (cases
    (trace
      (assert v37)
      (declare-const v38 (_ BitVec 64))
      (read-reg |_PC| nil v38)
      (define-const v39 (bvadd v38 #xfffffffffffffff0))
      (write-reg |_PC| nil v39))
    (trace
      (assert (not v37))
      (declare-const v38a (_ BitVec 64))
      (read-reg |_PC| nil v38a)
      (define-const v39a (bvadd v38a #x0000000000000004))
      (write-reg |_PC| nil v39a)))))";
  smt::TermBuilder TB;
  TraceParser P(TB);
  auto T = P.parseTrace(Text);
  ASSERT_TRUE(T.has_value()) << P.error();
  EXPECT_EQ(T->Cases.size(), 2u);
  EXPECT_EQ(T->countPaths(), 2u);
  EXPECT_EQ(T->countEvents(), 3u + 5u + 5u);
  // Round trip.
  smt::TermBuilder TB2;
  TraceParser P2(TB2);
  auto T2 = P2.parseTrace(T->toString());
  ASSERT_TRUE(T2.has_value()) << P2.error();
  EXPECT_EQ(T2->toString(), T->toString());
}

TEST(TraceTest, ParserRejectsMalformedInput) {
  smt::TermBuilder TB;
  TraceParser P(TB);
  EXPECT_FALSE(P.parseTrace("(trace (read-reg |X|))").has_value());
  TraceParser P2(TB);
  EXPECT_FALSE(P2.parseTrace("(trace (frobnicate 1 2))").has_value());
  TraceParser P3(TB);
  // Use before declaration.
  EXPECT_FALSE(P3.parseTrace("(trace (assert v1))").has_value());
  TraceParser P4(TB);
  EXPECT_FALSE(P4.parseTrace("(trace").has_value());
}

TEST(TraceTest, ParserRejectsHostileNumbersWithoutThrowing) {
  // Numbers in trace text are untrusted (cache files cross processes and
  // machines): non-numeric, negative, and 2^64-scale atoms used to reach
  // std::stoul and throw out of the parser; each must be a plain parse
  // error.  The width/index cap also bounds allocation: a 20-digit extract
  // index can neither wrap nor build a pathologically wide term.
  smt::TermBuilder TB;
  const char *Hostile[] = {
      "(trace (declare-const v0 (_ BitVec 18446744073709551616)))",
      "(trace (declare-const v0 (_ BitVec -64)))",
      "(trace (declare-const v0 (_ BitVec abc)))",
      "(trace (declare-const v0 (_ BitVec 64))"
      " (define-const v1 ((_ extract 99999999999999999999 0) v0)))",
      "(trace (declare-const v0 (_ BitVec 64))"
      " (define-const v1 ((_ zero_extend 18446744073709551615) v0)))",
      "(trace (declare-const v0 (_ BitVec 64))"
      " (read-mem v0 v0 184467440737095516160))",
  };
  for (const char *Text : Hostile) {
    TraceParser P(TB);
    EXPECT_FALSE(P.parseTrace(Text).has_value()) << Text;
  }
}

//===----------------------------------------------------------------------===//
// Operational semantics (Fig. 10).
//===----------------------------------------------------------------------===//

MachineState addSpState() {
  MachineState S;
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b10)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
  S.setReg(Reg("SP_EL2"), Value(BitVec(64, 0x1000)));
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x80000)));
  return S;
}

TEST(OpSemTest, AddSpUpdatesStackPointer) {
  smt::TermBuilder TB;
  std::vector<const Term *> Vars;
  Trace T = buildAddSpTrace(TB, Vars);
  Interpreter I(TB);
  auto Paths = I.runTrace(T, addSpState());
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Top);
  EXPECT_EQ(Paths[0].Final.getReg(Reg("SP_EL2"))->asBitVec().toUInt64(),
            0x1040u);
  EXPECT_EQ(Paths[0].Final.getReg(Reg("_PC"))->asBitVec().toUInt64(),
            0x80004u);
  EXPECT_TRUE(Paths[0].Labels.empty());
}

TEST(OpSemTest, AssumeRegViolationIsBottom) {
  smt::TermBuilder TB;
  std::vector<const Term *> Vars;
  Trace T = buildAddSpTrace(TB, Vars);
  MachineState S = addSpState();
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b01))); // EL1, not EL2
  Interpreter I(TB);
  auto Paths = I.runTrace(T, S);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Bottom);
}

TEST(OpSemTest, MissingRegisterIsBottom) {
  smt::TermBuilder TB;
  std::vector<const Term *> Vars;
  Trace T = buildAddSpTrace(TB, Vars);
  MachineState S = addSpState();
  S.Regs.erase(Reg("SP_EL2"));
  Interpreter I(TB);
  auto Paths = I.runTrace(T, S);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Bottom);
}

TEST(OpSemTest, ReadRegMismatchIsTop) {
  // A read-reg with a concrete expected value that differs from the state
  // steps to TOP (pruned execution), not BOTTOM.
  smt::TermBuilder TB;
  Trace T;
  T.Events.push_back(Event::readReg(Reg("X0"), TB.constBV(64, 7)));
  T.Events.push_back(Event::assumeE(TB.falseTerm())); // would be Bottom
  MachineState S;
  S.setReg(Reg("X0"), Value(BitVec(64, 8)));
  Interpreter I(TB);
  auto Paths = I.runTrace(T, S);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Top);
}

TEST(OpSemTest, CasesWithAssertsSelectBranch) {
  // Fig. 6 style: two branches guarded by asserts on a read flag.
  smt::TermBuilder TB;
  const Term *Z = TB.freshVar(Sort::bitvec(1), "z");
  Trace T;
  T.Events.push_back(Event::declareConst(Z));
  T.Events.push_back(Event::readReg(Reg("PSTATE", "Z"), Z));
  const Term *Cond = TB.eqTerm(Z, TB.constBV(1, 1));
  Trace Taken, NotTaken;
  Taken.Events.push_back(Event::assertE(Cond));
  Taken.Events.push_back(Event::writeReg(Reg("_PC"), TB.constBV(64, 0x10)));
  NotTaken.Events.push_back(Event::assertE(TB.notTerm(Cond)));
  NotTaken.Events.push_back(
      Event::writeReg(Reg("_PC"), TB.constBV(64, 0x20)));
  T.Cases = {Taken, NotTaken};

  MachineState S;
  S.setReg(Reg("PSTATE", "Z"), Value(BitVec(1, 1)));
  S.setReg(Reg("_PC"), Value(BitVec(64, 0)));
  Interpreter I(TB);
  auto Paths = I.runTrace(T, S);
  ASSERT_EQ(Paths.size(), 2u);
  // Exactly one branch survives to TOP with the updated PC; the other is
  // pruned at its assert (also TOP, but with no write).
  int Updated = 0;
  for (const auto &P : Paths) {
    EXPECT_EQ(P.Out, Outcome::Top);
    if (P.Final.getReg(Reg("_PC"))->asBitVec().toUInt64() == 0x10)
      ++Updated;
  }
  EXPECT_EQ(Updated, 1);
}

TEST(OpSemTest, MmioReadEmitsLabel) {
  struct FixedOracle : MmioOracle {
    BitVec mmioRead(uint64_t, unsigned NBytes) override {
      return BitVec(NBytes * 8, 0xAB);
    }
  };
  smt::TermBuilder TB;
  const Term *D = TB.freshVar(Sort::bitvec(32), "d");
  Trace T;
  T.Events.push_back(Event::declareConst(D));
  T.Events.push_back(Event::readMem(D, TB.constBV(64, 0x3f215040), 4));
  T.Events.push_back(Event::writeReg(Reg("W0"), D));
  FixedOracle O;
  Interpreter I(TB, &O);
  auto Paths = I.runTrace(T, MachineState());
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Top);
  ASSERT_EQ(Paths[0].Labels.size(), 1u);
  EXPECT_EQ(Paths[0].Labels[0].K, Label::Kind::Read);
  EXPECT_EQ(Paths[0].Labels[0].Addr.toUInt64(), 0x3f215040u);
  EXPECT_EQ(Paths[0].Labels[0].Data.toUInt64(), 0xABu);
  EXPECT_EQ(Paths[0].Final.getReg(Reg("W0"))->asBitVec().toUInt64(), 0xABu);
}

TEST(OpSemTest, MappedMemoryReadAndWrite) {
  smt::TermBuilder TB;
  const Term *D = TB.freshVar(Sort::bitvec(8), "d");
  Trace T;
  T.Events.push_back(Event::declareConst(D));
  T.Events.push_back(Event::readMem(D, TB.constBV(64, 0x100), 1));
  T.Events.push_back(Event::writeMem(TB.constBV(64, 0x200), D, 1));
  MachineState S;
  S.Mem[0x100] = 0x5A;
  S.Mem[0x200] = 0x00;
  Interpreter I(TB);
  auto Paths = I.runTrace(T, S);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Top);
  EXPECT_TRUE(Paths[0].Labels.empty());
  EXPECT_EQ(Paths[0].Final.Mem.at(0x200), 0x5Au);
}

TEST(OpSemTest, UnmappedWriteEmitsLabel) {
  smt::TermBuilder TB;
  Trace T;
  T.Events.push_back(
      Event::writeMem(TB.constBV(64, 0x3f215040), TB.constBV(32, 0x63), 4));
  Interpreter I(TB);
  auto Paths = I.runTrace(T, MachineState());
  ASSERT_EQ(Paths.size(), 1u);
  ASSERT_EQ(Paths[0].Labels.size(), 1u);
  EXPECT_EQ(Paths[0].Labels[0].K, Label::Kind::Write);
  EXPECT_EQ(Paths[0].Labels[0].Data.toUInt64(), 0x63u);
}

TEST(OpSemTest, ProgramFetchChainAndEndLabel) {
  // Two single-event instruction traces: each bumps the PC; after the
  // second, the PC leaves the instruction map and we get E(a) with TOP.
  smt::TermBuilder TB;
  auto mkInstr = [&](uint64_t Next) {
    Trace T;
    T.Events.push_back(Event::writeReg(Reg("_PC"), TB.constBV(64, Next)));
    return T;
  };
  Trace I0 = mkInstr(0x1004), I1 = mkInstr(0x1008);
  MachineState S;
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x1000)));
  S.Instrs[0x1000] = &I0;
  S.Instrs[0x1004] = &I1;
  Interpreter I(TB);
  auto Paths = I.runProgram(S, 10);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Top);
  ASSERT_EQ(Paths[0].Labels.size(), 1u);
  EXPECT_EQ(Paths[0].Labels[0].K, Label::Kind::End);
  EXPECT_EQ(Paths[0].Labels[0].Addr.toUInt64(), 0x1008u);
}

TEST(OpSemTest, InfiniteLoopRunsOutOfFuel) {
  // "b ." — an instruction that leaves the PC unchanged.
  smt::TermBuilder TB;
  Trace Loop;
  Loop.Events.push_back(Event::writeReg(Reg("_PC"), TB.constBV(64, 0x1000)));
  MachineState S;
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x1000)));
  S.Instrs[0x1000] = &Loop;
  Interpreter I(TB);
  auto Paths = I.runProgram(S, 16);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::OutOfFuel);
}

TEST(OpSemTest, UndeterminedUseIsStuck) {
  smt::TermBuilder TB;
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  Trace T;
  T.Events.push_back(Event::declareConst(X));
  T.Events.push_back(Event::writeReg(Reg("X0"), X)); // x never determined
  Interpreter I(TB);
  auto Paths = I.runTrace(T, MachineState());
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Out, Outcome::Stuck);
}

} // namespace
