//===- tests/smt_test.cpp - Term/Rewriter/BitBlaster/Solver tests ------------===//

#include "smt/Evaluator.h"
#include "smt/Rewriter.h"
#include "smt/Solver.h"
#include "smt/TermBuilder.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace islaris;
using namespace islaris::smt;

namespace {

TEST(TermTest, HashConsing) {
  TermBuilder TB;
  const Term *A = TB.constBV(64, 42);
  const Term *B = TB.constBV(64, 42);
  EXPECT_EQ(A, B);
  const Term *X = TB.freshVar(Sort::bitvec(64), "x");
  const Term *S1 = TB.bvAdd(X, A);
  const Term *S2 = TB.bvAdd(X, B);
  EXPECT_EQ(S1, S2);
  // Distinct fresh variables are never merged.
  EXPECT_NE(TB.freshVar(Sort::bitvec(8)), TB.freshVar(Sort::bitvec(8)));
}

TEST(TermTest, ConstantFoldingOnConstruction) {
  TermBuilder TB;
  const Term *S = TB.bvAdd(TB.constBV(8, 200), TB.constBV(8, 100));
  ASSERT_EQ(S->kind(), Kind::ConstBV);
  EXPECT_EQ(S->constBV().toUInt64(), (200 + 100) & 0xffu);
  EXPECT_EQ(TB.eqTerm(TB.constBV(8, 1), TB.constBV(8, 2)), TB.falseTerm());
  EXPECT_EQ(TB.bvUlt(TB.constBV(8, 1), TB.constBV(8, 2)), TB.trueTerm());
}

TEST(TermTest, PrintingMatchesIslaSyntax) {
  // The Fig. 3 expression: (bvadd ((_ extract 63 0) ((_ zero_extend 64)
  // v38)) #x0000000000000040).
  TermBuilder TB;
  const Term *V38 = TB.freshVar(Sort::bitvec(64), "v38");
  const Term *E = TB.bvAdd(TB.extract(63, 0, TB.zeroExtend(64, V38)),
                           TB.constBV(64, 0x40));
  // Note: extract(63,0) of a 128-bit term does not fold away at build time.
  EXPECT_EQ(E->toString(), "(bvadd ((_ extract 63 0) ((_ zero_extend 64) "
                           "v38)) #x0000000000000040)");
}

TEST(EvaluatorTest, BasicEvaluation) {
  TermBuilder TB;
  const Term *X = TB.freshVar(Sort::bitvec(16), "x");
  const Term *E = TB.bvMul(TB.bvAdd(X, TB.constBV(16, 1)), TB.constBV(16, 3));
  Env En;
  EXPECT_FALSE(evaluate(E, En).has_value());
  En[X->varId()] = Value(BitVec(16, 10));
  auto V = evaluate(E, En);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->asBitVec().toUInt64(), 33u);
}

TEST(EvaluatorTest, IteAndBool) {
  TermBuilder TB;
  const Term *B = TB.freshVar(Sort::boolean(), "b");
  const Term *E =
      TB.iteTerm(B, TB.constBV(8, 1), TB.constBV(8, 2));
  Env En;
  En[B->varId()] = Value(true);
  EXPECT_EQ(evaluate(E, En)->asBitVec().toUInt64(), 1u);
  En[B->varId()] = Value(false);
  EXPECT_EQ(evaluate(E, En)->asBitVec().toUInt64(), 2u);
}

TEST(RewriterTest, Fig3PatternCollapses) {
  // extract(63,0)(zext(64, x) + 0x40) must collapse to x + 0x40 (the
  // simplification enabling readable memcpy side conditions).
  TermBuilder TB;
  Rewriter RW(TB);
  const Term *X = TB.freshVar(Sort::bitvec(64), "x");
  const Term *E = TB.bvAdd(TB.zeroExtend(64, X), TB.constBV(128, 0x40));
  const Term *S = RW.simplify(TB.extract(63, 0, E));
  EXPECT_EQ(S, TB.bvAdd(X, TB.constBV(64, 0x40)));
}

TEST(RewriterTest, AddChainNormalization) {
  TermBuilder TB;
  Rewriter RW(TB);
  const Term *X = TB.freshVar(Sort::bitvec(64), "x");
  const Term *E = TB.bvAdd(TB.bvAdd(X, TB.constBV(64, 4)), TB.constBV(64, 4));
  EXPECT_EQ(RW.simplify(E), TB.bvAdd(X, TB.constBV(64, 8)));
  // x + 0 -> x, x - x -> 0.
  EXPECT_EQ(RW.simplify(TB.bvAdd(X, TB.constBV(64, 0))), X);
  EXPECT_EQ(RW.simplify(TB.bvSub(X, X)), TB.constBV(64, 0));
}

TEST(RewriterTest, EqualitySolvesForVariable) {
  TermBuilder TB;
  Rewriter RW(TB);
  const Term *X = TB.freshVar(Sort::bitvec(64), "x");
  // (x + 4) = 10  ->  x = 6.
  const Term *E =
      TB.eqTerm(TB.bvAdd(X, TB.constBV(64, 4)), TB.constBV(64, 10));
  EXPECT_EQ(RW.simplify(E), TB.eqTerm(X, TB.constBV(64, 6)));
  // zext(x) = wide constant with nonzero high bits is false.
  const Term *E2 = TB.eqTerm(TB.zeroExtend(64, X),
                             TB.constBV(BitVec::ones(128)));
  EXPECT_EQ(RW.simplify(E2), TB.falseTerm());
}

// Random term generator for soundness properties.
class RandomTermGen {
public:
  RandomTermGen(TermBuilder &TB, std::mt19937 &Rng, unsigned NumVars)
      : TB(TB), Rng(Rng) {
    for (unsigned I = 0; I < NumVars; ++I)
      Vars.push_back(TB.freshVar(Sort::bitvec(8)));
  }

  const Term *gen(int Depth) {
    if (Depth == 0 || Rng() % 4 == 0) {
      if (Rng() % 2)
        return Vars[Rng() % Vars.size()];
      return TB.constBV(8, Rng());
    }
    switch (Rng() % 18) {
    case 0:
      return TB.bvAdd(gen(Depth - 1), gen(Depth - 1));
    case 1:
      return TB.bvSub(gen(Depth - 1), gen(Depth - 1));
    case 2:
      return TB.bvMul(gen(Depth - 1), gen(Depth - 1));
    case 3:
      return TB.bvAnd(gen(Depth - 1), gen(Depth - 1));
    case 4:
      return TB.bvOr(gen(Depth - 1), gen(Depth - 1));
    case 5:
      return TB.bvXor(gen(Depth - 1), gen(Depth - 1));
    case 6:
      return TB.bvNot(gen(Depth - 1));
    case 7:
      return TB.bvShl(gen(Depth - 1), gen(Depth - 1));
    case 8:
      return TB.bvLShr(gen(Depth - 1), gen(Depth - 1));
    case 9: {
      const Term *T = gen(Depth - 1);
      return TB.extract(7, 0, TB.zeroExtend(8, T));
    }
    case 10:
      return TB.iteTerm(genBool(Depth - 1), gen(Depth - 1), gen(Depth - 1));
    case 11:
      return TB.bvAShr(gen(Depth - 1), gen(Depth - 1));
    case 12:
      return TB.bvNeg(gen(Depth - 1));
    case 13:
      return TB.bvSDiv(gen(Depth - 1), gen(Depth - 1));
    case 14:
      return TB.bvSRem(gen(Depth - 1), gen(Depth - 1));
    case 15: {
      // Slice out of a sign-extension.
      const Term *T = gen(Depth - 1);
      return TB.extract(9, 2, TB.signExtend(8, T));
    }
    case 16: {
      // Slice out of a concatenation.
      const Term *A = gen(Depth - 1), *B = gen(Depth - 1);
      return TB.extract(11, 4, TB.concat(A, B));
    }
    default:
      return TB.bvUDiv(gen(Depth - 1), gen(Depth - 1));
    }
  }

  const Term *genBool(int Depth) {
    if (Depth == 0)
      return TB.constBool(Rng() % 2);
    switch (Rng() % 8) {
    case 0:
      return TB.eqTerm(gen(Depth - 1), gen(Depth - 1));
    case 1:
      return TB.bvUlt(gen(Depth - 1), gen(Depth - 1));
    case 2:
      return TB.bvSle(gen(Depth - 1), gen(Depth - 1));
    case 3:
      return TB.bvSlt(gen(Depth - 1), gen(Depth - 1));
    case 4:
      return TB.bvUle(gen(Depth - 1), gen(Depth - 1));
    case 5:
      return TB.orTerm(genBool(Depth - 1), genBool(Depth - 1));
    case 6:
      return TB.notTerm(genBool(Depth - 1));
    default:
      return TB.andTerm(genBool(Depth - 1), genBool(Depth - 1));
    }
  }

  Env randomEnv() {
    Env E;
    for (const Term *V : Vars)
      E[V->varId()] = Value(BitVec(8, Rng()));
    return E;
  }

private:
  TermBuilder &TB;
  std::mt19937 &Rng;
  std::vector<const Term *> Vars;
};

class RewriterSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RewriterSoundnessTest, SimplifyPreservesSemantics) {
  std::mt19937 Rng(unsigned(GetParam()) * 2654435761u + 1);
  TermBuilder TB;
  Rewriter RW(TB);
  RandomTermGen Gen(TB, Rng, 4);
  for (int Round = 0; Round < 60; ++Round) {
    const Term *T = Gen.gen(4);
    const Term *S = RW.simplify(T);
    for (int Trial = 0; Trial < 10; ++Trial) {
      Env E = Gen.randomEnv();
      auto V1 = evaluate(T, E);
      auto V2 = evaluate(S, E);
      ASSERT_TRUE(V1 && V2);
      EXPECT_EQ(*V1, *V2) << "original: " << T->toString()
                          << "\nsimplified: " << S->toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterSoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

//===----------------------------------------------------------------------===//
// End-to-end solver tests.
//===----------------------------------------------------------------------===//

TEST(SolverTest, SimpleSatWithModel) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(16), "x");
  // x + 3 == 10 and x < 100.
  S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)), TB.constBV(16, 10)));
  S.assertTerm(TB.bvUlt(X, TB.constBV(16, 100)));
  ASSERT_EQ(S.check(), Result::Sat);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 7u);
}

TEST(SolverTest, UnsatByContradiction) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  S.assertTerm(TB.bvUlt(X, TB.constBV(8, 4)));
  S.assertTerm(TB.bvUlt(TB.constBV(8, 9), X));
  EXPECT_EQ(S.check(), Result::Unsat);
}

TEST(SolverTest, PushPop) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  S.assertTerm(TB.bvUlt(X, TB.constBV(8, 4)));
  S.push();
  S.assertTerm(TB.bvUlt(TB.constBV(8, 9), X));
  EXPECT_EQ(S.check(), Result::Unsat);
  S.pop();
  EXPECT_EQ(S.check(), Result::Sat);
}

TEST(SolverTest, ValidityOfBvIdentity) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(12), "x");
  const Term *Y = TB.freshVar(Sort::bitvec(12), "y");
  // (x ^ y) ^ y == x is valid.
  EXPECT_TRUE(S.isValid(TB.eqTerm(TB.bvXor(TB.bvXor(X, Y), Y), X)));
  // x + y == x is not valid.
  EXPECT_FALSE(S.isValid(TB.eqTerm(TB.bvAdd(X, Y), X)));
}

TEST(SolverTest, MulDivRelation) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  const Term *Y = TB.freshVar(Sort::bitvec(8), "y");
  // y != 0 -> (x / y) * y + (x % y) == x  must be valid.
  const Term *Prop = TB.impliesTerm(
      TB.distinctTerm(Y, TB.constBV(8, 0)),
      TB.eqTerm(TB.bvAdd(TB.bvMul(TB.bvUDiv(X, Y), Y), TB.bvURem(X, Y)), X));
  EXPECT_TRUE(S.isValid(Prop));
}

TEST(SolverTest, DivByZeroConvention) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  EXPECT_TRUE(S.isValid(
      TB.eqTerm(TB.bvUDiv(X, TB.constBV(8, 0)), TB.constBV(8, 0xff))));
  EXPECT_TRUE(S.isValid(TB.eqTerm(TB.bvURem(X, TB.constBV(8, 0)), X)));
}

TEST(SolverTest, ShiftSemantics) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  const Term *A = TB.freshVar(Sort::bitvec(8), "a");
  // Shifting by >= width gives zero.
  EXPECT_TRUE(S.isValid(TB.impliesTerm(
      TB.bvUle(TB.constBV(8, 8), A),
      TB.eqTerm(TB.bvShl(X, A), TB.constBV(8, 0)))));
  // (x << 1) == x + x.
  EXPECT_TRUE(S.isValid(
      TB.eqTerm(TB.bvShl(X, TB.constBV(8, 1)), TB.bvAdd(X, X))));
}

TEST(SolverTest, SignedComparison) {
  TermBuilder TB;
  Solver S(TB);
  // 0x80 <s 0 <s 0x7f at width 8.
  EXPECT_TRUE(S.isValid(TB.bvSlt(TB.constBV(8, 0x80), TB.constBV(8, 0))));
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  // x <s 0  <->  msb(x) == 1.
  const Term *P = TB.eqTerm(
      TB.bvSlt(X, TB.constBV(8, 0)),
      TB.eqTerm(TB.extract(7, 7, X), TB.constBV(1, 1)));
  EXPECT_TRUE(S.isValid(P));
}

class SolverVsEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverVsEvalTest, SatModelsSatisfyFormulaAndUnsatHasNoWitness) {
  std::mt19937 Rng(unsigned(GetParam()) * 48271u + 7);
  TermBuilder TB;
  RandomTermGen Gen(TB, Rng, 3);
  for (int Round = 0; Round < 25; ++Round) {
    const Term *F = Gen.genBool(3);
    Solver S(TB);
    S.assertTerm(F);
    Result R = S.check();
    if (R == Result::Sat) {
      // Read the model back and evaluate.
      Env E;
      for (const Term *V : collectVars(F))
        E[V->varId()] = S.modelValue(V);
      auto V = evaluate(F, E);
      ASSERT_TRUE(V.has_value());
      EXPECT_TRUE(V->asBool()) << F->toString();
    } else {
      // Randomized refutation check: no sampled assignment may satisfy F.
      for (int Trial = 0; Trial < 200; ++Trial) {
        Env E = Gen.randomEnv();
        auto V = evaluate(F, E);
        if (V) {
          EXPECT_FALSE(V->asBool()) << F->toString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverVsEvalTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SolverTest, SubstituteComposes) {
  TermBuilder TB;
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  const Term *Y = TB.freshVar(Sort::bitvec(8), "y");
  const Term *E = TB.bvAdd(X, TB.bvMul(Y, TB.constBV(8, 2)));
  std::unordered_map<uint32_t, const Term *> M;
  M[X->varId()] = TB.constBV(8, 3);
  M[Y->varId()] = TB.constBV(8, 5);
  const Term *R = TB.substitute(E, M);
  ASSERT_EQ(R->kind(), Kind::ConstBV);
  EXPECT_EQ(R->constBV().toUInt64(), 13u);
}

//===----------------------------------------------------------------------===//
// Side-condition cache: memo table, model invalidation, persistent store.
//===----------------------------------------------------------------------===//

// Regression: modelValue() after pop()/assertTerm() used to answer from the
// retracted scope's model.  The model must be invalidated by any state
// mutation and repopulated by the next Sat check.
TEST(SolverTest, ModelInvalidatedAcrossPushPop) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  S.assertTerm(TB.bvUlt(X, TB.constBV(8, 10)));
  S.push();
  S.assertTerm(TB.eqTerm(X, TB.constBV(8, 7)));
  ASSERT_EQ(S.check(), Result::Sat);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 7u);
  S.pop();
  S.assertTerm(TB.eqTerm(X, TB.constBV(8, 3)));
#ifndef NDEBUG
  EXPECT_DEATH(S.modelValue(X), "modelValue without a Sat answer");
#endif
  ASSERT_EQ(S.check(), Result::Sat);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 3u);
}

// A memo hit must return the identical verdict and model as the cold solve,
// without another SAT call.
TEST(SolverTest, MemoHitMatchesColdSolve) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(16), "x");
  S.assertTerm(TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)), TB.constBV(16, 10)));
  S.assertTerm(TB.bvUlt(X, TB.constBV(16, 100)));
  ASSERT_EQ(S.check(), Result::Sat);
  uint64_t Cold = S.modelValue(X).asBitVec().toUInt64();
  EXPECT_EQ(S.stats().NumSatCalls, 1u);

  ASSERT_EQ(S.check(), Result::Sat); // identical goal set: memo answers
  EXPECT_EQ(S.stats().NumSatCalls, 1u);
  EXPECT_EQ(S.stats().NumMemoHits, 1u);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), Cold);

  S.push(); // an empty frame does not change the canonical goal set
  ASSERT_EQ(S.check(), Result::Sat);
  EXPECT_EQ(S.stats().NumMemoHits, 2u);
  S.pop();

  S.push();
  S.assertTerm(TB.bvUlt(TB.constBV(16, 50), X)); // now unsat (x = 7)
  EXPECT_EQ(S.check(), Result::Unsat);
  EXPECT_EQ(S.stats().NumSatCalls, 2u);
  EXPECT_EQ(S.check(), Result::Unsat); // unsat results memoize too
  EXPECT_EQ(S.stats().NumSatCalls, 2u);
  EXPECT_EQ(S.stats().NumMemoHits, 3u);
  S.pop();
}

// Trivial paths: no SAT core is ever constructed, yet checks are counted
// and an (empty) model is available after a syntactic Sat.
TEST(SolverTest, TrivialCheckPathsStaySyntactic) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(8), "x");
  EXPECT_EQ(S.check(), Result::Sat); // nothing asserted
  EXPECT_EQ(S.stats().NumSyntactic, 1u);
  EXPECT_EQ(S.stats().NumSatCalls, 0u);
  EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), 0u); // default model

  S.assertTerm(TB.trueTerm());
  EXPECT_EQ(S.check(), Result::Sat); // simplifies to the empty goal set
  EXPECT_TRUE(S.isValid(TB.trueTerm()));
  S.assertTerm(TB.falseTerm());
  EXPECT_EQ(S.check(), Result::Unsat);
  EXPECT_EQ(S.stats().NumSyntactic, 4u);
  EXPECT_EQ(S.stats().NumSatCalls, 0u);
}

namespace {
/// In-memory SolverCache capturing store()/lookup() traffic.
struct FakeSolverCache : SolverCache {
  std::map<std::string, CachedResult> M;
  std::optional<CachedResult> lookup(const std::string &C) override {
    auto It = M.find(C);
    return It == M.end() ? std::nullopt
                         : std::optional<CachedResult>(It->second);
  }
  void store(const std::string &C, const CachedResult &R) override {
    M.emplace(C, R);
  }
};
} // namespace

// A persistent-cache hit in a *different* TermBuilder (new ids, same
// printed closure) must return the same verdict and model values with no
// SAT call.
TEST(SolverTest, PersistentCacheRoundTripAcrossBuilders) {
  FakeSolverCache Cache;
  uint64_t Cold;
  {
    TermBuilder TB;
    Solver S(TB);
    S.setCache(&Cache);
    const Term *X = TB.freshVar(Sort::bitvec(16), "x");
    S.assertTerm(
        TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)), TB.constBV(16, 10)));
    ASSERT_EQ(S.check(), Result::Sat);
    Cold = S.modelValue(X).asBitVec().toUInt64();
    EXPECT_EQ(S.stats().NumSatCalls, 1u);
    EXPECT_EQ(Cache.M.size(), 1u);
  }
  {
    TermBuilder TB;
    const Term *Pad = TB.freshVar(Sort::bitvec(8), "pad"); // shift var ids
    (void)Pad;
    Solver S(TB);
    S.setCache(&Cache);
    const Term *X = TB.freshVar(Sort::bitvec(16), "x");
    S.assertTerm(
        TB.eqTerm(TB.bvAdd(X, TB.constBV(16, 3)), TB.constBV(16, 10)));
    ASSERT_EQ(S.check(), Result::Sat);
    EXPECT_EQ(S.stats().NumSatCalls, 0u);
    EXPECT_EQ(S.stats().NumStoreHits, 1u);
    EXPECT_EQ(S.modelValue(X).asBitVec().toUInt64(), Cold);
  }
}

// Two distinct variables printing the same name make the printed closure
// ambiguous; such queries must never reach the persistent cache (the
// id-keyed memo still works).
TEST(SolverTest, AmbiguousNamesSkipPersistentCache) {
  FakeSolverCache Cache;
  TermBuilder TB;
  Solver S(TB);
  S.setCache(&Cache);
  const Term *X1 = TB.freshVar(Sort::bitvec(8), "x");
  const Term *X2 = TB.freshVar(Sort::bitvec(8), "x");
  ASSERT_NE(X1, X2);
  S.assertTerm(TB.bvUlt(X1, TB.constBV(8, 5)));
  S.assertTerm(TB.bvUlt(TB.constBV(8, 9), X2));
  EXPECT_EQ(S.check(), Result::Sat); // satisfiable: x1 and x2 are distinct
  EXPECT_TRUE(Cache.M.empty());
  EXPECT_EQ(S.check(), Result::Sat);
  EXPECT_EQ(S.stats().NumMemoHits, 1u);
}

// The blaster survives across checks: re-solving related goals reuses the
// previously built circuits instead of re-blasting the whole CNF.
TEST(SolverTest, IncrementalBlastingReusesCircuits) {
  TermBuilder TB;
  Solver S(TB);
  const Term *X = TB.freshVar(Sort::bitvec(32), "x");
  const Term *Y = TB.freshVar(Sort::bitvec(32), "y");
  const Term *Sum = TB.bvAdd(TB.bvMul(X, Y), Y);
  S.assertTerm(TB.bvUlt(Sum, TB.constBV(32, 1000)));
  S.push();
  S.assertTerm(TB.eqTerm(X, TB.constBV(32, 2)));
  ASSERT_EQ(S.check(), Result::Sat);
  uint64_t BlastedAfterFirst = S.stats().TermsBlasted;
  S.pop();
  S.push();
  S.assertTerm(TB.eqTerm(X, TB.constBV(32, 3))); // fresh goal, shared Sum
  ASSERT_EQ(S.check(), Result::Sat);
  S.pop();
  EXPECT_EQ(S.stats().NumSatCalls, 2u);
  EXPECT_GT(S.stats().TermsReused, 0u);
  // The second check must not have re-blasted the shared circuit: only a
  // handful of new terms (the new equality) get translated.
  EXPECT_LT(S.stats().TermsBlasted - BlastedAfterFirst,
            BlastedAfterFirst);
}

} // namespace
