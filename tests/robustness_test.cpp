//===- tests/robustness_test.cpp - Guards, faults, malformed inputs -------------===//
//
// The fault-tolerance contract of the pipeline, exercised layer by layer:
// resource guards trip with attributed diagnostics instead of wedging or
// asserting (in Release builds too), the batch driver contains exceptions
// and retries retryable failures, malformed external inputs (ITL text,
// objdump listings, persistent cache entries) are rejected or self-repaired
// without crashing, and the suite aggregation separates proof failures from
// infrastructure errors.
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "cache/BatchDriver.h"
#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"
#include "frontend/CaseStudies.h"
#include "frontend/Objdump.h"
#include "frontend/Verifier.h"
#include "itl/Parser.h"
#include "models/Models.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

using namespace islaris;
using islaris::itl::Reg;
using islaris::seplogic::Spec;
using islaris::support::CancelToken;
using islaris::support::ErrorCode;
using islaris::support::FaultInjector;
using islaris::support::FaultSite;
using smt::Term;

namespace {

namespace e = arch::aarch64::enc;
namespace fs = std::filesystem;

isla::Assumptions el1Assumptions() {
  isla::Assumptions A;
  A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(Reg("SCTLR_EL1"), BitVec(64, 0));
  return A;
}

/// RAII activation of a fault injector (restores the previous one).
struct ScopedFaults {
  FaultInjector *Saved;
  explicit ScopedFaults(FaultInjector *F)
      : Saved(FaultInjector::active()) {
    FaultInjector::setActive(F);
  }
  ~ScopedFaults() { FaultInjector::setActive(Saved); }
};

/// A unique scratch directory under the build tree, removed on scope exit.
struct ScopedDir {
  std::string Path;
  explicit ScopedDir(const std::string &Name)
      : Path("robustness-scratch-" + Name) {
    std::error_code EC;
    fs::remove_all(Path, EC);
    fs::create_directories(Path, EC);
  }
  ~ScopedDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

/// One concrete-opcode trace job under EL1 assumptions.
cache::TraceJob makeJob(const isla::Assumptions &A, uint32_t Op,
                        uint64_t Tag = 0) {
  cache::TraceJob J;
  J.Model = &models::aarch64Model();
  J.ArchName = "aarch64";
  J.Op = isla::OpcodeSpec::concrete(Op);
  J.Assume = &A;
  J.Tag = Tag;
  return J;
}

//===----------------------------------------------------------------------===//
// Executor resource guards.
//===----------------------------------------------------------------------===//

TEST(GuardTest, PathBudgetExceededIsAttributed) {
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::Assumptions A = el1Assumptions();
  isla::ExecOptions O;
  O.MaxPaths = 1; // cbz forks into taken/untaken under a symbolic register
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::cbz(2, 0x1c)), A, O);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.D.Code, ErrorCode::PathBudgetExceeded);
  EXPECT_NE(R.Error.find("path budget"), std::string::npos) << R.Error;
}

TEST(GuardTest, ExpiredDeadlineFailsCleanly) {
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::Assumptions A = el1Assumptions();
  isla::ExecOptions O;
  O.DeadlineSeconds = 1e-9; // already expired when the path loop starts
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::addImm(0, 0, 1)), A, O);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.D.Code, ErrorCode::DeadlineExceeded);
}

TEST(GuardTest, PreCancelledTokenFailsWithCancelled) {
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::Assumptions A = el1Assumptions();
  isla::ExecOptions O;
  O.Cancel = CancelToken::create();
  O.Cancel.requestCancel();
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::addImm(0, 0, 1)), A, O);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.D.Code, ErrorCode::Cancelled);
}

TEST(GuardTest, SolverGiveUpInExecutorIsNeverAWrongTrace) {
  // Force every solver check to Unknown: the executor must refuse to decide
  // the branch rather than fork or prune on a guess.
  FaultInjector FI;
  FI.failFirst(FaultSite::SolverUnknown, 1000);
  ScopedFaults SF(&FI);
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::Assumptions A = el1Assumptions();
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::cbz(2, 0x1c)), A,
             isla::ExecOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.D.Code == ErrorCode::SolverBudgetExceeded ||
              R.D.Code == ErrorCode::Cancelled)
      << support::errorCodeName(R.D.Code);
  EXPECT_TRUE(support::isInfrastructureError(R.D.Code));
}

//===----------------------------------------------------------------------===//
// Solver budget: Unknown is an answer, never folded into Sat/Unsat.
//===----------------------------------------------------------------------===//

TEST(GuardTest, SolverBudgetYieldsUnknown) {
  smt::TermBuilder TB;
  smt::Solver S(TB);
  const Term *X = TB.freshVar(smt::Sort::bitvec(16), "x");
  const Term *Y = TB.freshVar(smt::Sort::bitvec(16), "y");
  // A 16x16 multiplication equality is far beyond a 1-propagation budget.
  S.assertTerm(TB.eqTerm(TB.bvMul(X, Y), TB.constBV(16, 0x2b3)));
  smt::SolverLimits L;
  L.MaxPropagations = 1;
  S.setLimits(L);
  EXPECT_EQ(S.check(), smt::Result::Unknown);
  EXPECT_GE(S.stats().NumUnknown, 1u);
  // Removing the limit recovers the real answer on the same solver: the
  // interrupted attempt must not have corrupted its state.
  S.setLimits(smt::SolverLimits());
  EXPECT_EQ(S.check(), smt::Result::Sat);
}

TEST(GuardTest, CancelledSolverCheckIsUnknown) {
  smt::TermBuilder TB;
  smt::Solver S(TB);
  const Term *X = TB.freshVar(smt::Sort::bitvec(8), "x");
  S.assertTerm(TB.eqTerm(X, TB.constBV(8, 7)));
  smt::SolverLimits L;
  L.Cancel = CancelToken::create();
  L.Cancel.requestCancel();
  S.setLimits(L);
  EXPECT_EQ(S.check(), smt::Result::Unknown);
}

//===----------------------------------------------------------------------===//
// Proof-engine budgets.
//===----------------------------------------------------------------------===//

/// The negative_test baseline: `add x0, x0, #5; ret` with a correct spec,
/// so any failure below comes from the injected guard, not the proof.
struct AddFixture {
  frontend::Verifier V{frontend::aarch64()};
  std::vector<std::unique_ptr<Spec>> Owned;
  AddFixture() {
    V.addCode({{0x1000, e::addImm(0, 0, 5)}, {0x1004, e::ret()}});
    std::string Err;
    EXPECT_TRUE(V.generateTraces(Err)) << Err;
  }

  bool verify() {
    smt::TermBuilder &TB = V.builder();
    Owned.push_back(std::make_unique<Spec>(V.makeSpec("post")));
    Spec *Post = Owned.back().get();
    const Term *PX = Post->param(64, "px");
    Post->reg(Reg("R0"), TB.bvAdd(PX, TB.constBV(64, 5)));
    Owned.push_back(std::make_unique<Spec>(V.makeSpec("entry")));
    Spec *Entry = Owned.back().get();
    const Term *X = Entry->evar(64, "x");
    const Term *R = Entry->evar(64, "r");
    Entry->reg(Reg("R0"), X);
    Entry->reg(Reg("R30"), R);
    Entry->instrPre(R, Post, {X});
    V.engine().registerSpec(0x1000, Entry);
    return V.engine().verifyAll();
  }
};

TEST(GuardTest, InstrBudgetExhaustedIsAttributed) {
  AddFixture F;
  // Budget counts instruction *continuations*; 0 trips at the first jump.
  F.V.engine().MaxInstrsPerPath = 0;
  EXPECT_FALSE(F.verify());
  EXPECT_EQ(F.V.engine().diag().Code, ErrorCode::InstrBudgetExhausted);
  EXPECT_NE(F.V.engine().error().find("instruction budget"),
            std::string::npos)
      << F.V.engine().error();
}

TEST(GuardTest, CancelledProofSearchIsAttributed) {
  AddFixture F;
  smt::SolverLimits L;
  L.Cancel = CancelToken::create();
  L.Cancel.requestCancel();
  F.V.engine().setSolverLimits(L);
  EXPECT_FALSE(F.verify());
  EXPECT_EQ(F.V.engine().diag().Code, ErrorCode::Cancelled);
  EXPECT_TRUE(support::isInfrastructureError(F.V.engine().diag().Code));
}

TEST(GuardTest, SolverGiveUpWithdrawsTheVerdict) {
  // Every check Unknown: the engine must report an attributed failure —
  // "proven" here would be a silently wrong verdict.
  FaultInjector FI;
  FI.failFirst(FaultSite::SolverUnknown, 100000);
  AddFixture F; // trace generation runs fault-free
  ScopedFaults SF(&FI);
  EXPECT_FALSE(F.verify());
  EXPECT_TRUE(support::isInfrastructureError(F.V.engine().diag().Code))
      << support::errorCodeName(F.V.engine().diag().Code);
}

TEST(GuardTest, EngineBeforeTracesFailsInsteadOfAsserting) {
  frontend::Verifier V(frontend::aarch64());
  // No addCode / generateTraces: the engine is empty but well-defined.
  Spec Entry = V.makeSpec("entry");
  const Term *R = Entry.evar(64, "r");
  Entry.reg(Reg("R30"), R);
  V.engine().registerSpec(0x1000, &Entry);
  EXPECT_FALSE(V.engine().verifyAll());
  EXPECT_FALSE(V.engine().error().empty());
}

//===----------------------------------------------------------------------===//
// Batch driver: exception containment, retries, quarantine.
//===----------------------------------------------------------------------===//

TEST(BatchDriverTest, ExceptionIsContainedAndBatchDrains) {
  FaultInjector FI;
  FI.failFirst(FaultSite::ExecThrow, 1); // first execution throws
  ScopedFaults SF(&FI);
  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 1), 0),
                                       makeJob(A, e::addImm(1, 1, 2), 1)};
  cache::BatchDriver D(1); // serial: deterministic probe order
  D.setOptions({0, 0});    // no retries: the throw must surface
  auto Rs = D.run(Jobs, nullptr);
  ASSERT_EQ(Rs.size(), 2u);
  // Groups execute in fingerprint order, not submission order, so which of
  // the two jobs catches the injected throw is arbitrary — but exactly one
  // must fail with a contained exception, and the other must still finish.
  unsigned NumOk = 0, NumThrew = 0;
  for (const cache::TraceJobResult &R : Rs) {
    if (R.Ok) {
      ++NumOk;
      continue;
    }
    EXPECT_EQ(R.D.Code, ErrorCode::JobException);
    EXPECT_NE(R.Error.find("exception escaped trace job"), std::string::npos);
    ++NumThrew;
  }
  EXPECT_EQ(NumOk, 1u);
  EXPECT_EQ(NumThrew, 1u);
  EXPECT_EQ(D.lastStats().Exceptions, 1u);
  EXPECT_EQ(D.lastStats().Failed, 1u);
}

TEST(BatchDriverTest, RetryRecoversFromTransientFault) {
  FaultInjector FI;
  FI.failFirst(FaultSite::ExecStep, 1); // only the first attempt faults
  ScopedFaults SF(&FI);
  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 3))};
  cache::BatchDriver D(1);
  D.setOptions({0, 1}); // one retry
  auto Rs = D.run(Jobs, nullptr);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_TRUE(Rs[0].Ok) << Rs[0].Error;
  EXPECT_EQ(Rs[0].Attempts, 2u);
  EXPECT_EQ(D.lastStats().Retries, 1u);
  EXPECT_EQ(D.lastStats().Failed, 0u);
}

TEST(BatchDriverTest, ExhaustedRetriesQuarantineWithLastDiag) {
  FaultInjector FI;
  FI.failFirst(FaultSite::ExecStep, 100); // every attempt faults
  ScopedFaults SF(&FI);
  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 3))};
  cache::BatchDriver D(1);
  D.setOptions({0, 2});
  auto Rs = D.run(Jobs, nullptr);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_FALSE(Rs[0].Ok);
  EXPECT_EQ(Rs[0].Attempts, 3u); // 1 try + 2 retries
  EXPECT_EQ(Rs[0].D.Code, ErrorCode::InjectedFault);
  EXPECT_EQ(D.lastStats().Retries, 2u);
}

TEST(BatchDriverTest, IncompleteJobFailsWithoutCrashing) {
  isla::Assumptions A = el1Assumptions();
  cache::TraceJob Bad; // null Model/Assume: submitter bug, not a segfault
  std::vector<cache::TraceJob> Jobs = {Bad, makeJob(A, e::addImm(0, 0, 1))};
  cache::BatchDriver D(1);
  auto Rs = D.run(Jobs, nullptr);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_FALSE(Rs[0].Ok);
  EXPECT_EQ(Rs[0].D.Code, ErrorCode::Internal);
  EXPECT_TRUE(Rs[1].Ok);
}

TEST(BatchDriverTest, CancelledJobIsRetriedThenQuarantined) {
  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 1))};
  Jobs[0].Opts.Cancel = CancelToken::create();
  Jobs[0].Opts.Cancel.requestCancel(); // never completes
  cache::BatchDriver D(1);
  D.setOptions({0, 1});
  auto Rs = D.run(Jobs, nullptr);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_FALSE(Rs[0].Ok);
  EXPECT_EQ(Rs[0].Attempts, 2u); // Cancelled is retryable
  EXPECT_EQ(Rs[0].D.Code, ErrorCode::Cancelled);
}

//===----------------------------------------------------------------------===//
// Malformed external inputs.
//===----------------------------------------------------------------------===//

TEST(MalformedInputTest, TruncatedAndGarbageTracesAreRejected) {
  // A real trace, then break it.
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  isla::Assumptions A = el1Assumptions();
  isla::ExecResult R =
      Ex.run(isla::OpcodeSpec::concrete(e::addImm(0, 0, 1)), A);
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Good = R.Trace.toString();

  for (const std::string &Bad :
       {Good.substr(0, Good.size() / 2), std::string("(trace (xyz"),
        std::string("\x01\x02garbage\xff"), std::string("()"),
        std::string()}) {
    smt::TermBuilder TB2;
    itl::TraceParser P(TB2);
    auto T = P.parseTrace(Bad);
    EXPECT_FALSE(T.has_value());
    EXPECT_FALSE(P.error().empty());
  }
}

TEST(MalformedInputTest, MalformedObjdumpLinesAreRejected) {
  std::string Err;
  // Non-hex opcode token after the address.
  EXPECT_FALSE(frontend::parseObjdump("  400000:\tZZZZZZZZ \tnop\n", Err));
  EXPECT_FALSE(Err.empty());
  Err.clear();
  // Opcode token too wide for 32 bits.
  EXPECT_FALSE(
      frontend::parseObjdump("  400000:\tb40000e2b4 \tnop\n", Err));
  EXPECT_FALSE(Err.empty());
  Err.clear();
  // Duplicate address.
  EXPECT_FALSE(frontend::parseObjdump(
      "  400000:\tb40000e2 \tcbz\n  400000:\td65f03c0 \tret\n", Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST(MalformedInputTest, SymbolLookupIsReleaseSafe) {
  std::string Err;
  auto Img = frontend::parseObjdump(
      "0000000000400000 <memcpy>:\n  400000:\td65f03c0 \tret\n", Err);
  ASSERT_TRUE(Img.has_value()) << Err;
  EXPECT_TRUE(Img->lookup("memcpy").has_value());
  EXPECT_EQ(*Img->lookup("memcpy"), 0x400000u);
  EXPECT_FALSE(Img->lookup("no_such_symbol").has_value());
}

TEST(MalformedInputTest, OverlappingAddCodeIsADiagNotUB) {
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{0x1000, e::addImm(0, 0, 5)}});
  V.addCode({{0x1000, e::ret()}}); // overlap: recorded, not asserted
  std::string Err;
  EXPECT_FALSE(V.generateTraces(Err));
  EXPECT_EQ(V.diag().Code, ErrorCode::OverlappingCode);
  EXPECT_NE(Err.find("overlapping"), std::string::npos) << Err;
}

TEST(MalformedInputTest, SymbolicAtUnknownAddressIsADiag) {
  frontend::Verifier V(frontend::aarch64());
  V.symbolicAt(0xdead, 21, 10); // no code there
  std::string Err;
  EXPECT_FALSE(V.generateTraces(Err));
  EXPECT_EQ(V.diag().Code, ErrorCode::UnknownSymbol);
}

//===----------------------------------------------------------------------===//
// Persistent caches: corruption detection and self-repair.
//===----------------------------------------------------------------------===//

/// On-disk path of an entry under the sharded fan-out layout
/// (dir/<first hex byte>/<hex><ext>).
static std::string shardedPath(const std::string &Dir,
                               const cache::Fingerprint &K,
                               const std::string &Ext) {
  std::string Hex = K.toHex();
  return Dir + "/" + Hex.substr(0, 2) + "/" + Hex + Ext;
}

TEST(CacheFaultTest, CorruptTraceEntryIsAMissAndSelfRepairs) {
  ScopedDir Dir("trace-corrupt");
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Dir.Path;

  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 9))};

  cache::Fingerprint Key;
  {
    cache::TraceCache C(Cfg);
    cache::BatchDriver D(1);
    auto Rs = D.run(Jobs, &C);
    ASSERT_TRUE(Rs[0].Ok) << Rs[0].Error;
    Key = Rs[0].Key;
    ASSERT_EQ(C.stats().DiskWrites, 1u);
  }

  // Corrupt the entry on disk.
  std::string Path = shardedPath(Dir.Path, Key, ".itc");
  ASSERT_TRUE(fs::exists(Path));
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "(islaris-trace-cache 1 not-even-a-key";
  }

  cache::TraceCache C2(Cfg);
  EXPECT_FALSE(C2.lookup(Key).has_value()); // miss, not a crash
  EXPECT_EQ(C2.stats().CorruptRemoved, 1u);
  EXPECT_FALSE(fs::exists(Path)); // corpse deleted...

  // ...so a re-execution can repair the entry for good.
  cache::BatchDriver D2(1);
  auto Rs2 = D2.run(Jobs, &C2);
  ASSERT_TRUE(Rs2[0].Ok);
  EXPECT_TRUE(fs::exists(Path));
  cache::TraceCache C3(Cfg);
  EXPECT_TRUE(C3.lookup(Key).has_value());
}

TEST(CacheFaultTest, TornWriteIsDetectedOnRead) {
  ScopedDir Dir("trace-torn");
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Dir.Path;

  isla::Assumptions A = el1Assumptions();
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 11))};

  FaultInjector FI;
  FI.failFirst(FaultSite::CacheTornWrite, 1);
  cache::Fingerprint Key;
  {
    ScopedFaults SF(&FI);
    cache::TraceCache C(Cfg);
    cache::BatchDriver D(1);
    auto Rs = D.run(Jobs, &C);
    ASSERT_TRUE(Rs[0].Ok); // the job itself is unaffected
    Key = Rs[0].Key;
  }
  // The torn file WAS published — exactly the failure rename cannot mask.
  std::string Path = shardedPath(Dir.Path, Key, ".itc");
  ASSERT_TRUE(fs::exists(Path));

  cache::TraceCache C2(Cfg);
  EXPECT_FALSE(C2.lookup(Key).has_value()); // detected, degraded to a miss
  EXPECT_EQ(C2.stats().CorruptRemoved, 1u);
  EXPECT_FALSE(fs::exists(Path));
}

TEST(CacheFaultTest, CorruptSideCondEntryIsAMissAndIsRemoved) {
  ScopedDir Dir("sidecond-corrupt");
  cache::SideCondConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Dir.Path;
  cache::SideCondStore S(Cfg);

  smt::SolverCache::CachedResult R;
  R.Sat = false;
  S.store("(goals (= a b))", R);
  ASSERT_EQ(S.stats().DiskWrites, 1u);

  std::string Path =
      shardedPath(Dir.Path, S.key("(goals (= a b))"), ".scc");
  ASSERT_TRUE(fs::exists(Path));
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "garbage that is not an s-expression";
  }

  cache::SideCondStore S2(Cfg);
  EXPECT_FALSE(S2.lookup("(goals (= a b))").has_value());
  EXPECT_EQ(S2.stats().CorruptRemoved, 1u);
  EXPECT_FALSE(fs::exists(Path));
}

TEST(CacheFaultTest, WriteAndRenameFaultsOnlySuppressTheEntry) {
  ScopedDir Dir("trace-wfail");
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = Dir.Path;

  isla::Assumptions A = el1Assumptions();
  FaultInjector FI;
  FI.failFirst(FaultSite::CacheWrite, 1);
  FI.failFirst(FaultSite::CacheRename, 1);
  ScopedFaults SF(&FI);

  cache::TraceCache C(Cfg);
  cache::BatchDriver D(1);
  // Two distinct jobs: first write fails outright, second loses its rename.
  std::vector<cache::TraceJob> Jobs = {makeJob(A, e::addImm(0, 0, 1), 0),
                                       makeJob(A, e::addImm(2, 2, 2), 1)};
  auto Rs = D.run(Jobs, &C);
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_TRUE(Rs[1].Ok);
  EXPECT_EQ(C.stats().DiskWrites, 0u);
  // No entry files and no orphaned temp files (empty shard directories
  // from the aborted writes are fine).  Generation bookkeeping
  // (generations.txt, manifests/) is exempt: it sits outside the
  // injected-fault domain, and a manifest line for a suppressed entry is
  // a harmless orphan by design.
  unsigned Files = 0;
  for (const auto &E : fs::recursive_directory_iterator(Dir.Path)) {
    if (!E.is_regular_file())
      continue;
    if (E.path().filename() == "generations.txt" ||
        E.path().parent_path().filename() == "manifests")
      continue;
    ++Files;
  }
  EXPECT_EQ(Files, 0u);
}

//===----------------------------------------------------------------------===//
// Suite aggregation.
//===----------------------------------------------------------------------===//

TEST(SuiteAggregationTest, ExitCodeSeparatesProofFromInfrastructure) {
  using frontend::CaseResult;
  CaseResult Pass;
  Pass.Ok = true;
  CaseResult ProofFail;
  ProofFail.Ok = false;
  ProofFail.D = support::Diag::error(ErrorCode::ProofFailed, "proof-engine",
                                     "cannot prove");
  CaseResult Infra;
  Infra.Ok = false;
  Infra.D = support::Diag::error(ErrorCode::JobTimeout, "batch-driver",
                                 "job exceeded wall clock");

  EXPECT_EQ(frontend::suiteExitCode({Pass, Pass}), 0);
  EXPECT_EQ(frontend::suiteExitCode({Pass, ProofFail}), 1);
  EXPECT_EQ(frontend::suiteExitCode({Pass, ProofFail, Infra}), 2);

  frontend::SuiteSummary S =
      frontend::summarize({Pass, ProofFail, Infra, Pass});
  EXPECT_EQ(S.Passed, 2u);
  EXPECT_EQ(S.ProofFailures, 1u);
  EXPECT_EQ(S.InfraErrors, 1u);
  EXPECT_FALSE(S.allOk());
}

TEST(SuiteAggregationTest, DiagRenderNamesCodeAndStage) {
  support::Diag D = support::Diag::error(ErrorCode::SolverBudgetExceeded,
                                         "smt", "gave up");
  std::string Text = D.render();
  EXPECT_NE(Text.find("solver-budget-exceeded"), std::string::npos) << Text;
  EXPECT_NE(Text.find("smt"), std::string::npos);
  EXPECT_NE(Text.find("gave up"), std::string::npos);
}

} // namespace
