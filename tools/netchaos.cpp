//===- tools/netchaos.cpp - Fault-injecting proxy for islarisd -----------------===//
//
// Standalone wrapper over server::ChaosProxy: sit between islarisd clients
// and a daemon and mangle the byte stream deterministically.
//
//   netchaos --listen ENDPOINT --upstream ENDPOINT [--seed N]
//            [--delay P] [--delay-max-ms MS] [--split P] [--corrupt P]
//            [--drop P] [--reset P]
//
// Flags default from the environment (ISLARIS_FAULT_SEED, ISLARIS_NETCHAOS
// — the FaultInjector convention) and override it.  Prints
// "netchaos: listening on <endpoint> (seed N)" once live, echoing the seed
// so a failing chaos run is replayable from its log, then runs until
// SIGINT/SIGTERM, printing injection counters on the way out.
//
// The CI netchaos job kills this process mid-stream on purpose: everything
// downstream must see resets, not hangs.
//
//===----------------------------------------------------------------------===//

#include "server/ChaosProxy.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace islaris;

namespace {

std::atomic<bool> Stop{false};

void onSignal(int) { Stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(
      stderr,
      "usage: netchaos --listen ENDPOINT --upstream ENDPOINT [--seed N]\n"
      "                [--delay P] [--delay-max-ms MS] [--split P]\n"
      "                [--corrupt P] [--drop P] [--reset P]\n"
      "  ENDPOINT: unix socket path or TCP host:port (port 0 = ephemeral)\n"
      "  defaults come from ISLARIS_FAULT_SEED / ISLARIS_NETCHAOS\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  server::ChaosConfig Cfg = server::ChaosConfig::fromEnv();
  std::string Listen, Upstream;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "netchaos: %s needs a value\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--listen")
      Listen = Next();
    else if (A == "--upstream")
      Upstream = Next();
    else if (A == "--seed")
      Cfg.Seed = std::strtoull(Next(), nullptr, 10);
    else if (A == "--delay")
      Cfg.DelayProb = std::atof(Next());
    else if (A == "--delay-max-ms")
      Cfg.DelayMaxMs = std::atof(Next());
    else if (A == "--split")
      Cfg.SplitProb = std::atof(Next());
    else if (A == "--corrupt")
      Cfg.CorruptProb = std::atof(Next());
    else if (A == "--drop")
      Cfg.DropProb = std::atof(Next());
    else if (A == "--reset")
      Cfg.ResetProb = std::atof(Next());
    else if (A == "--help" || A == "-h")
      return usage();
    else {
      std::fprintf(stderr, "netchaos: unknown flag %s\n", A.c_str());
      return usage();
    }
  }
  if (Listen.empty() || Upstream.empty())
    return usage();

  server::ChaosProxy P(Cfg);
  std::string Err;
  if (!P.start(Listen, Upstream, Err)) {
    std::fprintf(stderr, "netchaos: %s\n", Err.c_str());
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("netchaos: listening on %s (seed %llu)\n",
              P.boundEndpoint().str().c_str(),
              (unsigned long long)Cfg.Seed);
  std::fflush(stdout);

  while (!Stop.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  P.stop();
  server::ChaosStats St = P.stats();
  std::printf("netchaos: done (%llu conns, %llu bytes, delays %llu, "
              "splits %llu, corruptions %llu, drops %llu, resets %llu)\n",
              (unsigned long long)St.Connections,
              (unsigned long long)St.BytesForwarded,
              (unsigned long long)St.Delays, (unsigned long long)St.Splits,
              (unsigned long long)St.Corruptions,
              (unsigned long long)St.Drops, (unsigned long long)St.Resets);
  return 0;
}
