//===- tools/islarisd.cpp - Resident verification daemon ----------------------===//
//
// The islarisd entry point: parse flags, start server::Server, wait for a
// drain (SIGINT/SIGTERM or a client `shutdown` frame), exit 0 on a clean
// drain.
//
//   islarisd --socket /tmp/islaris.sock | --listen host:port
//            [--workers N] [--queue-depth N] [--max-inflight N]
//            [--idle-evict SECONDS] [--cache-dir DIR] [--no-persist]
//            [--job-timeout SECONDS] [--exec-delay SECONDS]
//            [--write-timeout S] [--heartbeat S] [--half-open-reap S]
//            [--model-dir DIR] [--degraded-probe S]
//
// Prints "islarisd: listening on <endpoint>" once the socket is live (for
// TCP port 0, with the kernel-assigned port), so harnesses (CI, tests)
// can wait for readiness and learn the port by watching stdout.
//
// SIGHUP hot-reloads the ISA models (re-reading --model-dir overrides):
// in-flight jobs finish on the parse they started with, requests admitted
// after the swap use the new one, and `islaris-cli health` reports the
// bumped generation.  SIGINT/SIGTERM drain; a third signal kills hard.
//
// ISLARIS_FAULTS / ISLARIS_FAULT_SEED arm the fault injector (chaos and
// degraded-mode testing — e.g. ISLARIS_FAULTS=disk-full:1 simulates a full
// device and flips the daemon into cache-off degraded mode).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace islaris;

namespace {

std::atomic<int> SignalsSeen{0};
std::atomic<uint64_t> ReloadsSeen{0};

void onSignal(int) {
  // Only async-signal-safe work here: requestShutdown takes mutexes and
  // notifies condition variables, which can deadlock if the signal lands
  // on a thread already inside cv/mutex internals.  A watcher thread polls
  // the flag and drains from normal thread context.
  //
  // First signal: graceful drain.  Third: something is wedged, die hard
  // (_Exit is signal-safe).
  int N = SignalsSeen.fetch_add(1, std::memory_order_relaxed) + 1;
  if (N >= 3)
    std::_Exit(2);
}

void onHup(int) {
  // Same discipline: just bump a counter; the watcher thread performs the
  // reload (parsing, mutexes, I/O — none of it signal-safe).
  ReloadsSeen.fetch_add(1, std::memory_order_relaxed);
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --listen HOST:PORT) [--workers N]\n"
      "          [--queue-depth N] [--max-inflight N] [--idle-evict S]\n"
      "          [--cache-dir DIR] [--no-persist] [--job-timeout S]\n"
      "          [--exec-delay S] [--write-timeout S] [--heartbeat S]\n"
      "          [--half-open-reap S] [--model-dir DIR]\n"
      "          [--degraded-probe S]\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  server::ServerConfig Cfg;
  Cfg.Limits.JobRetries = 1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "islarisd: %s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket")
      Cfg.SocketPath = Next("--socket");
    else if (A == "--listen")
      Cfg.SocketPath = Next("--listen"); // same endpoint grammar
    else if (A == "--max-inflight")
      Cfg.MaxInflightPerClient = size_t(std::atoll(Next("--max-inflight")));
    else if (A == "--write-timeout")
      Cfg.WriteTimeoutSeconds = std::atof(Next("--write-timeout"));
    else if (A == "--heartbeat")
      Cfg.HeartbeatSeconds = std::atof(Next("--heartbeat"));
    else if (A == "--half-open-reap")
      Cfg.HalfOpenReapSeconds = std::atof(Next("--half-open-reap"));
    else if (A == "--workers")
      Cfg.Workers = unsigned(std::atoi(Next("--workers")));
    else if (A == "--queue-depth")
      Cfg.MaxQueueDepth = size_t(std::atoll(Next("--queue-depth")));
    else if (A == "--idle-evict")
      Cfg.IdleEvictSeconds = std::atof(Next("--idle-evict"));
    else if (A == "--cache-dir")
      Cfg.CacheDir = Next("--cache-dir");
    else if (A == "--no-persist")
      Cfg.Persist = false;
    else if (A == "--job-timeout")
      Cfg.Limits.JobTimeoutSeconds = std::atof(Next("--job-timeout"));
    else if (A == "--exec-delay")
      Cfg.ExecDelaySeconds = std::atof(Next("--exec-delay"));
    else if (A == "--model-dir")
      Cfg.ModelDir = Next("--model-dir");
    else if (A == "--degraded-probe")
      Cfg.DegradedProbeSeconds = std::atof(Next("--degraded-probe"));
    else if (A == "--help" || A == "-h")
      return usage(argv[0]);
    else {
      std::fprintf(stderr, "islarisd: unknown flag %s\n", A.c_str());
      return usage(argv[0]);
    }
  }
  if (Cfg.SocketPath.empty())
    return usage(argv[0]);

  // Arm the fault injector from the environment before any store I/O so
  // chaos harnesses (CI's disk-full round, netchaos) can fault the daemon
  // from outside.  The unique_ptr outlives the server.
  std::unique_ptr<support::FaultInjector> Faults =
      support::FaultInjector::fromEnv();
  if (Faults)
    support::FaultInjector::setActive(Faults.get());

  server::Server S(Cfg);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "islarisd: %s\n", Err.c_str());
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGHUP, onHup);

  // Translate the signal flags into drains/reloads from regular thread
  // context.  Exits on its own once the server drains for any other reason
  // (e.g. a client shutdown frame): wait() flips running() after teardown.
  std::thread SigWatch([&S] {
    uint64_t ReloadsDone = 0;
    while (S.running()) {
      if (SignalsSeen.load(std::memory_order_relaxed) > 0) {
        S.requestShutdown();
        return;
      }
      uint64_t Want = ReloadsSeen.load(std::memory_order_relaxed);
      if (Want > ReloadsDone) {
        // Coalesce a burst of SIGHUPs into one reload; keep watching for
        // drain signals afterwards.
        ReloadsDone = Want;
        std::string RErr;
        if (S.reloadModels(RErr))
          std::fprintf(stderr, "islarisd: models reloaded (SIGHUP)\n");
        else
          std::fprintf(stderr, "islarisd: reload failed: %s\n",
                       RErr.c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::printf("islarisd: listening on %s\n",
              S.boundEndpoint().str().c_str());
  std::fflush(stdout);

  S.wait();
  SigWatch.join();

  server::ServerStats St = S.stats();
  std::printf("islarisd: drained (%llu requests, %llu executed, "
              "%llu warm hits, %llu deduped, %llu rejected, "
              "%llu shed, %llu deadline-expired, %llu half-open reaped)\n",
              (unsigned long long)St.Requests,
              (unsigned long long)St.Executed,
              (unsigned long long)St.WarmHits,
              (unsigned long long)St.DedupFanout,
              (unsigned long long)St.Rejected,
              (unsigned long long)St.Shed,
              (unsigned long long)St.DeadlineExpired,
              (unsigned long long)St.HalfOpenReaped);
  return 0;
}
