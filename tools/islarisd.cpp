//===- tools/islarisd.cpp - Resident verification daemon ----------------------===//
//
// The islarisd entry point: parse flags, start server::Server, wait for a
// drain (SIGINT/SIGTERM or a client `shutdown` frame), exit 0 on a clean
// drain.
//
//   islarisd --socket /tmp/islaris.sock [--workers N] [--queue-depth N]
//            [--idle-evict SECONDS] [--cache-dir DIR] [--no-persist]
//            [--job-timeout SECONDS] [--exec-delay SECONDS]
//
// Prints "islarisd: listening on <path>" once the socket is live, so
// harnesses (CI, tests) can wait for readiness by watching stdout.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace islaris;

namespace {

std::atomic<int> SignalsSeen{0};

void onSignal(int) {
  // Only async-signal-safe work here: requestShutdown takes mutexes and
  // notifies condition variables, which can deadlock if the signal lands
  // on a thread already inside cv/mutex internals.  A watcher thread polls
  // the flag and drains from normal thread context.
  //
  // First signal: graceful drain.  Third: something is wedged, die hard
  // (_Exit is signal-safe).
  int N = SignalsSeen.fetch_add(1, std::memory_order_relaxed) + 1;
  if (N >= 3)
    std::_Exit(2);
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--workers N] [--queue-depth N]\n"
      "          [--idle-evict SECONDS] [--cache-dir DIR] [--no-persist]\n"
      "          [--job-timeout SECONDS] [--exec-delay SECONDS]\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  server::ServerConfig Cfg;
  Cfg.Limits.JobRetries = 1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "islarisd: %s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket")
      Cfg.SocketPath = Next("--socket");
    else if (A == "--workers")
      Cfg.Workers = unsigned(std::atoi(Next("--workers")));
    else if (A == "--queue-depth")
      Cfg.MaxQueueDepth = size_t(std::atoll(Next("--queue-depth")));
    else if (A == "--idle-evict")
      Cfg.IdleEvictSeconds = std::atof(Next("--idle-evict"));
    else if (A == "--cache-dir")
      Cfg.CacheDir = Next("--cache-dir");
    else if (A == "--no-persist")
      Cfg.Persist = false;
    else if (A == "--job-timeout")
      Cfg.Limits.JobTimeoutSeconds = std::atof(Next("--job-timeout"));
    else if (A == "--exec-delay")
      Cfg.ExecDelaySeconds = std::atof(Next("--exec-delay"));
    else if (A == "--help" || A == "-h")
      return usage(argv[0]);
    else {
      std::fprintf(stderr, "islarisd: unknown flag %s\n", A.c_str());
      return usage(argv[0]);
    }
  }
  if (Cfg.SocketPath.empty())
    return usage(argv[0]);

  server::Server S(Cfg);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "islarisd: %s\n", Err.c_str());
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // Translate the signal flag into a drain from regular thread context.
  // Exits on its own once the server drains for any other reason (e.g. a
  // client shutdown frame): wait() flips running() after teardown.
  std::thread SigWatch([&S] {
    while (S.running()) {
      if (SignalsSeen.load(std::memory_order_relaxed) > 0) {
        S.requestShutdown();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::printf("islarisd: listening on %s\n", Cfg.SocketPath.c_str());
  std::fflush(stdout);

  S.wait();
  SigWatch.join();

  server::ServerStats St = S.stats();
  std::printf("islarisd: drained (%llu requests, %llu executed, "
              "%llu warm hits, %llu deduped, %llu rejected)\n",
              (unsigned long long)St.Requests,
              (unsigned long long)St.Executed,
              (unsigned long long)St.WarmHits,
              (unsigned long long)St.DedupFanout,
              (unsigned long long)St.Rejected);
  return 0;
}
