//===- tools/islaris-cli.cpp - islarisd command-line client --------------------===//
//
// Thin client over server::Client:
//
//   islaris-cli --socket ENDPOINT ping
//   islaris-cli --socket ENDPOINT stats
//   islaris-cli --socket ENDPOINT health
//   islaris-cli --socket ENDPOINT reload
//   islaris-cli --socket ENDPOINT study NAME|suite
//   islaris-cli --socket ENDPOINT trace ARCH OPCODE-HEX [--sym-mask HEX]
//               [--assume BASE[.FIELD]=WIDTH:VALUE]...
//   islaris-cli --socket ENDPOINT shutdown
//
// ENDPOINT is a Unix socket path, a TCP "host:port", or a comma-separated
// failover list of either ("a.sock,b.sock,host:port"): the client dials
// the first reachable endpoint (with --least-loaded, the least-loaded one)
// and rotates through the ring on resets, reaps, refusals, and shed
// storms.  Retry knobs:
// --deadline-ms N bounds each command end to end (and travels to the
// server), --retries N caps attempts, --retry-seed N fixes the backoff
// jitter stream so chaos runs replay, --quiet-retries hides retry noise.
// Sheds and transient transport failures are retried transparently; the
// exit code reflects only the final outcome.
//
// Exit codes follow the suite convention: 0 verified/ok, 1 proof failure,
// 2 infrastructure error (connection failure, rejection, malformed reply).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace islaris;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: islaris-cli --socket ENDPOINT[,ENDPOINT...] [--deadline-ms N]\n"
      "                   [--retries N] [--retry-seed N] [--least-loaded]\n"
      "                   COMMAND\n"
      "  ENDPOINT: unix socket path or TCP host:port; a comma list fails\n"
      "            over between daemons sharing a store\n"
      "commands:\n"
      "  ping                          round-trip liveness check\n"
      "  stats                         print the server's stats JSON\n"
      "  health                        print the readiness snapshot\n"
      "  reload                        hot-reload the server's ISA models\n"
      "  study NAME|suite              run one case study or all nine\n"
      "  trace ARCH OPCODE-HEX         symbolically execute one opcode\n"
      "    [--sym-mask HEX]            symbolic opcode bits\n"
      "    [--assume B[.F]=W:V]...     concrete register assumption\n"
      "  shutdown                      drain and stop the server\n");
  return 2;
}

/// "BASE[.FIELD]=WIDTH:VALUE" (value decimal or 0x-hex).
bool parseAssume(const std::string &S, server::TraceRequest::Assume &Out) {
  size_t Eq = S.find('=');
  if (Eq == std::string::npos)
    return false;
  std::string Reg = S.substr(0, Eq);
  std::string Val = S.substr(Eq + 1);
  size_t Dot = Reg.find('.');
  Out.Base = Reg.substr(0, Dot);
  Out.Field = Dot == std::string::npos ? "" : Reg.substr(Dot + 1);
  size_t Colon = Val.find(':');
  if (Colon == std::string::npos || Out.Base.empty())
    return false;
  Out.Width = unsigned(std::strtoul(Val.substr(0, Colon).c_str(), nullptr, 10));
  Out.Value = std::strtoull(Val.substr(Colon + 1).c_str(), nullptr, 0);
  return Out.Width > 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  server::ClientOptions Opt;
  Opt.Name = "islaris-cli";
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "islaris-cli: %s needs a value\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket")
      Socket = Next();
    else if (A == "--deadline-ms")
      Opt.DeadlineMs = std::strtoull(Next(), nullptr, 10);
    else if (A == "--retries")
      Opt.MaxAttempts = unsigned(std::atoi(Next()));
    else if (A == "--retry-seed")
      Opt.Seed = std::strtoull(Next(), nullptr, 10);
    else if (A == "--least-loaded")
      Opt.PreferLeastLoaded = true;
    else
      Args.push_back(A);
  }
  if (Socket.empty() || Args.empty())
    return usage();

  server::Client C(Opt);
  std::string Err;
  if (!C.connect(Socket, Err)) {
    std::fprintf(stderr, "islaris-cli: %s\n", Err.c_str());
    return 2;
  }

  const std::string &Cmd = Args[0];
  if (Cmd == "ping") {
    if (!C.ping(Err)) {
      std::fprintf(stderr, "islaris-cli: ping failed: %s\n", Err.c_str());
      return 2;
    }
    std::printf("pong\n");
    return 0;
  }

  if (Cmd == "stats") {
    std::string Json;
    if (!C.getStats(Json, Err)) {
      std::fprintf(stderr, "islaris-cli: stats failed: %s\n", Err.c_str());
      return 2;
    }
    std::printf("%s\n", Json.c_str());
    return 0;
  }

  if (Cmd == "health") {
    server::HealthInfo H;
    if (!C.health(H, Err)) {
      std::fprintf(stderr, "islaris-cli: health failed: %s\n", Err.c_str());
      return 2;
    }
    std::printf("{\"endpoint\":\"%s\",\"protocol\":%llu,\"pid\":%llu,"
                "\"uptime_seconds\":%.3f,\"queue_depth\":%llu,"
                "\"active_jobs\":%llu,\"draining\":%llu,"
                "\"model_generation\":%llu,\"model_fp\":\"%s\","
                "\"degraded\":%llu,\"publish_failures\":%llu,"
                "\"degraded_seconds\":%.3f}\n",
                C.activeEndpoint().c_str(), (unsigned long long)H.Version,
                (unsigned long long)H.Pid, H.UptimeSeconds,
                (unsigned long long)H.QueueDepth,
                (unsigned long long)H.ActiveJobs,
                (unsigned long long)H.Draining,
                (unsigned long long)H.Generation, H.ModelFpHex.c_str(),
                (unsigned long long)H.DegradedFlags,
                (unsigned long long)H.PublishFailures, H.DegradedSeconds);
    return 0;
  }

  if (Cmd == "reload") {
    if (!C.reloadServer(Err)) {
      std::fprintf(stderr, "islaris-cli: reload failed: %s\n", Err.c_str());
      return 2;
    }
    std::printf("islaris-cli: models reloaded on %s\n",
                C.activeEndpoint().c_str());
    return 0;
  }

  if (Cmd == "shutdown") {
    if (!C.shutdownServer(Err)) {
      std::fprintf(stderr, "islaris-cli: shutdown failed: %s\n", Err.c_str());
      return 2;
    }
    std::printf("islaris-cli: server draining\n");
    return 0;
  }

  if (Cmd == "study") {
    if (Args.size() != 2)
      return usage();
    server::Client::StudyResult R;
    bool Sent = C.runStudy(Args[1], R, Err,
                           [](const frontend::CaseResult &Row) {
                             std::printf("%-14s %-8s %s%s%s\n",
                                         Row.Name.c_str(), Row.Isa.c_str(),
                                         Row.Ok ? "ok" : "FAILED",
                                         Row.Ok ? "" : ": ",
                                         Row.Ok ? "" : Row.Error.c_str());
                             std::fflush(stdout);
                           });
    if (!Sent) {
      std::fprintf(stderr, "islaris-cli: study failed: %s\n", Err.c_str());
      return 2;
    }
    if (R.Rejected) {
      std::fprintf(stderr, "islaris-cli: rejected: %s\n",
                   R.RejectReason.c_str());
      return 2;
    }
    server::ClientNetStats NS = C.netStats();
    std::printf("islaris-cli: %zu row(s), status %u, %.3fs server time\n",
                R.Rows.size(), R.Done.Status, R.Done.Seconds);
    if (NS.Retries || NS.Sheds)
      std::fprintf(stderr,
                   "islaris-cli: net retries=%llu sheds=%llu "
                   "reconnects=%llu\n",
                   (unsigned long long)NS.Retries,
                   (unsigned long long)NS.Sheds,
                   (unsigned long long)NS.Reconnects);
    return int(R.Done.Status);
  }

  if (Cmd == "trace") {
    if (Args.size() < 3)
      return usage();
    server::TraceRequest T;
    T.Arch = Args[1];
    T.Opcode = uint32_t(std::strtoul(Args[2].c_str(), nullptr, 16));
    for (size_t I = 3; I < Args.size(); ++I) {
      if (Args[I] == "--sym-mask" && I + 1 < Args.size()) {
        T.SymMask = uint32_t(std::strtoul(Args[++I].c_str(), nullptr, 16));
      } else if (Args[I] == "--assume" && I + 1 < Args.size()) {
        server::TraceRequest::Assume A;
        if (!parseAssume(Args[++I], A)) {
          std::fprintf(stderr, "islaris-cli: bad --assume %s\n",
                       Args[I].c_str());
          return 2;
        }
        T.Assumes.push_back(A);
      } else {
        return usage();
      }
    }
    server::Client::TraceResult R;
    if (!C.runTrace(T, R, Err)) {
      std::fprintf(stderr, "islaris-cli: trace failed: %s\n", Err.c_str());
      return 2;
    }
    if (R.Rejected) {
      std::fprintf(stderr, "islaris-cli: rejected: %s\n",
                   R.RejectReason.c_str());
      return 2;
    }
    if (!R.Ok) {
      std::fprintf(stderr, "islaris-cli: %s (status %u)\n",
                   R.Done.Error.c_str(), R.Done.Status);
      return int(R.Done.Status ? R.Done.Status : 2);
    }
    std::printf("%s", R.EntryText.c_str());
    server::ClientNetStats NS = C.netStats();
    std::fprintf(stderr,
                 "islaris-cli: %s result in %.3fs (attempts %llu, "
                 "net retries %llu, sheds %llu)\n",
                 R.Done.Source.c_str(), R.Done.Seconds,
                 (unsigned long long)R.Done.Attempts,
                 (unsigned long long)NS.Retries,
                 (unsigned long long)NS.Sheds);
    return 0;
  }

  std::fprintf(stderr, "islaris-cli: unknown command %s\n", Cmd.c_str());
  return usage();
}
