//===- tools/cachectl.cpp - Cache maintenance mini-tool -----------------------===//
//
// Operator entry point for the offline maintenance passes:
//
//   cachectl scrub [--dir DIR] [--max-bytes N] [--dry-run]
//   cachectl gc    [--dir DIR] [--keep-generations N] [--dry-run]
//
// `scrub` works over both stores under DIR (default resolveCacheDir(): the
// trace store at the root, the side-condition store under DIR/sidecond):
// verifies every entry checksum, quarantines corruption, reaps stale temp
// files, migrates legacy entries into enveloped sharded form, and (with
// --max-bytes) evicts least-recently-used entries until the store fits.
//
// `gc` retires store generations: every model fingerprint outside the N
// most recently touched (default 2) has its manifest's entries deleted —
// the entries minted against retired model text that lookups can never hit
// again.  Also applied to both stores.
//
// Exit codes: 0 = clean, 1 = scrub found corruption (quarantined), 2 = bad
// usage or the pass itself failed.
//
//===----------------------------------------------------------------------===//

#include "cache/Generations.h"
#include "cache/Scrub.h"
#include "cache/TraceCache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace islaris;

static void printReport(const char *Label, const cache::ScrubReport &R) {
  std::printf("%s: scanned %llu files: %llu ok, %llu migrated, "
              "%llu quarantined, %llu temps reaped, %llu evicted "
              "(%llu bytes reclaimed, %llu in use)\n",
              Label, (unsigned long long)R.FilesScanned,
              (unsigned long long)R.OkEntries,
              (unsigned long long)R.LegacyMigrated,
              (unsigned long long)R.Quarantined,
              (unsigned long long)R.TempsRemoved,
              (unsigned long long)R.Evicted,
              (unsigned long long)R.BytesReclaimed,
              (unsigned long long)R.BytesInUse);
  for (const support::Diag &D : R.Diags)
    std::printf("  %s\n", D.render().c_str());
}

static void printGcReport(const char *Label,
                          const cache::GenerationGcReport &R) {
  std::printf("%s: %llu generation(s), %llu retired, %llu entries removed "
              "(%llu bytes reclaimed)\n",
              Label, (unsigned long long)R.Generations,
              (unsigned long long)R.Retired,
              (unsigned long long)R.EntriesRemoved,
              (unsigned long long)R.BytesReclaimed);
  for (const support::Diag &D : R.Diags)
    std::printf("  %s\n", D.render().c_str());
}

static int usage() {
  std::fprintf(stderr,
               "usage: cachectl scrub [--dir DIR] [--max-bytes N] "
               "[--dry-run]\n"
               "       cachectl gc    [--dir DIR] [--keep-generations N] "
               "[--dry-run]\n");
  return 2;
}

static int runScrub(int Argc, char **Argv) {
  std::string Dir;
  uint64_t MaxBytes = 0;
  bool DryRun = false;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--dir") == 0 && I + 1 < Argc)
      Dir = Argv[++I];
    else if (std::strcmp(Argv[I], "--max-bytes") == 0 && I + 1 < Argc)
      MaxBytes = std::strtoull(Argv[++I], nullptr, 0);
    else if (std::strcmp(Argv[I], "--dry-run") == 0)
      DryRun = true;
    else
      return usage();
  }
  if (Dir.empty())
    Dir = cache::resolveCacheDir();

  cache::ScrubOptions O;
  O.MaxBytes = MaxBytes;
  O.DryRun = DryRun;

  O.Dir = Dir;
  cache::ScrubReport Traces = cache::scrubStore(O);
  printReport("trace store", Traces);

  O.Dir = Dir + "/sidecond";
  cache::ScrubReport SideCond = cache::scrubStore(O);
  printReport("sidecond store", SideCond);

  if (!Traces.clean() || !SideCond.clean())
    return 1;
  return 0;
}

static int runGc(int Argc, char **Argv) {
  std::string Dir;
  unsigned Keep = 2;
  bool DryRun = false;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--dir") == 0 && I + 1 < Argc)
      Dir = Argv[++I];
    else if (std::strcmp(Argv[I], "--keep-generations") == 0 && I + 1 < Argc)
      Keep = unsigned(std::strtoul(Argv[++I], nullptr, 0));
    else if (std::strcmp(Argv[I], "--dry-run") == 0)
      DryRun = true;
    else
      return usage();
  }
  if (Keep == 0) {
    std::fprintf(stderr, "cachectl: --keep-generations must be >= 1\n");
    return 2;
  }
  if (Dir.empty())
    Dir = cache::resolveCacheDir();

  cache::GenerationGcOptions O;
  O.KeepGenerations = Keep;
  O.DryRun = DryRun;

  O.Dir = Dir;
  cache::GenerationGcReport Traces = cache::gcGenerations(O);
  printGcReport("trace store", Traces);

  O.Dir = Dir + "/sidecond";
  cache::GenerationGcReport SideCond = cache::gcGenerations(O);
  printGcReport("sidecond store", SideCond);
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "scrub") == 0)
    return runScrub(Argc, Argv);
  if (std::strcmp(Argv[1], "gc") == 0)
    return runGc(Argc, Argv);
  return usage();
}
