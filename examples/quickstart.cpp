//===- examples/quickstart.cpp - Islaris-CPP in five minutes --------------------===//
//
// The Fig. 3 pipeline end to end:
//   1. take the machine-code opcode of `add sp, sp, #0x40` (0x910103ff);
//   2. run the Isla-style symbolic executor over the Armv8-A model under
//      the EL=2 / SP=1 configuration assumptions, printing the ITL trace;
//   3. verify the Hoare double {SP_EL2 |-> b} ... {SP_EL2 |-> b + 64}
//      with the separation-logic engine.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/Verifier.h"

#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;
using smt::Term;

int main() {
  namespace e = arch::aarch64::enc;
  constexpr uint64_t CodeAddr = 0x80000;
  const uint32_t Opcode = e::addImm(31, 31, 0x40); // add sp, sp, #0x40

  std::printf("opcode: 0x%08x (add sp, sp, #0x40; Fig. 3 of the paper)\n\n",
              Opcode);

  // --- Step 1+2: symbolic execution under configuration assumptions. ---
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{CodeAddr, Opcode}});
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10)) // exception level 2
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));   // SP_ELx selected

  std::string Err;
  if (!V.generateTraces(Err)) {
    std::fprintf(stderr, "trace generation failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("=== Isla trace ===\n%s\n\n",
              V.traceAt(CodeAddr)->toString().c_str());

  // --- Step 3: the Hoare double.  The postcondition is expressed as the
  // precondition of the continuation (the instruction after the add). ---
  smt::TermBuilder &TB = V.builder();

  seplogic::Spec Post = V.makeSpec("post");
  const Term *B = Post.param(64, "b");
  Post.reg(Reg("SP_EL2"), TB.bvAdd(B, TB.constBV(64, 0x40)));

  seplogic::Spec Pre = V.makeSpec("pre");
  const Term *B0 = Pre.evar(64, "b0");
  Pre.reg(Reg("SP_EL2"), B0);
  Pre.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10));
  Pre.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Pre.instrPre(TB.constBV(64, CodeAddr + 4), &Post, {B0});

  auto &PE = V.engine();
  PE.registerSpec(CodeAddr, &Pre);
  if (!PE.verifyAll()) {
    std::fprintf(stderr, "verification failed: %s\n", PE.error().c_str());
    return 1;
  }

  std::printf("=== Verified ===\n");
  std::printf("{SP_EL2 |->r b} add sp,sp,#0x40 {SP_EL2 |->r b + 0x40}\n");
  std::printf("events processed: %u, solver queries: %llu\n",
              PE.stats().EventsProcessed,
              (unsigned long long)PE.stats().SolverQueries);
  return 0;
}
