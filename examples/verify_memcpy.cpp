//===- examples/verify_memcpy.cpp - The Fig. 7/8 verification -------------------===//
//
// Runs the full memcpy case study on both architectures (the §2.5 / §2.7
// demonstration): GCC-shaped Armv8-A code and Clang-shaped RISC-V code,
// verified against the Fig. 8 specification with a loop invariant at the
// copy loop head.  Prints the per-phase statistics the paper's Fig. 12
// reports for this example.
//
// Build & run:  ./build/examples/verify_memcpy [byte count]
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include <cstdio>
#include <cstdlib>

using islaris::frontend::CaseResult;

static void report(const CaseResult &R) {
  std::printf("%-8s %-4s : %s\n", R.Name.c_str(), R.Isa.c_str(),
              R.Ok ? "VERIFIED" : ("FAILED: " + R.Error).c_str());
  if (!R.Ok)
    return;
  std::printf("  asm instructions : %u\n", R.AsmInstrs);
  std::printf("  ITL events       : %u\n", R.ItlEvents);
  std::printf("  spec size        : %u chunks/binders\n", R.SpecSize);
  std::printf("  manual hints     : %u\n", R.Hints);
  std::printf("  symbolic exec    : %.3fs\n", R.IslaSeconds);
  std::printf("  sep-logic auto   : %.3fs (%u events, %u paths)\n",
              R.Proof.automationSeconds(), R.Proof.EventsProcessed,
              R.Proof.PathsVerified);
  std::printf("  side conditions  : %.3fs (%llu solver queries)\n\n",
              R.Proof.SideCondSeconds,
              (unsigned long long)R.Proof.SolverQueries);
}

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
  std::printf("Verifying memcpy over %u symbolic bytes with symbolic "
              "source/destination addresses.\n\n",
              N);
  report(islaris::frontend::runMemcpyArm(N));
  report(islaris::frontend::runMemcpyRv(N));
  return 0;
}
