//===- examples/exception_vector.cpp - Fig. 9, verified AND executed -------------===//
//
// The §2.6 systems-code demonstration from two angles:
//   1. verify the Fig. 9 exception-vector program (install a vector at
//      EL2, eret to EL1, hvc back into the vector, return with x0 = 42);
//   2. then *execute* the same machine code under the ITL operational
//      semantics from a concrete initial state, checking the adequacy
//      story concretely: the run never reaches BOTTOM and x0 really is 42
//      when the program reaches its hang loop.
//
// Build & run:  ./build/examples/exception_vector
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"
#include "itl/OpSem.h"

#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;
using smt::Value;

int main() {
  // --- Verification (the hvc case study). ---
  frontend::CaseResult R = frontend::runHvc();
  if (!R.Ok) {
    std::fprintf(stderr, "verification failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("Fig. 9 program VERIFIED: reaching the hang loop implies "
              "x0 == 42.\n");
  std::printf("  %u instructions, %u ITL events, %.3fs symbolic execution, "
              "%.3fs proof\n\n",
              R.AsmInstrs, R.ItlEvents, R.IslaSeconds,
              R.Proof.TotalSeconds);

  // --- Concrete execution through the ITL semantics. ---
  // Regenerate the traces (the case study owns its Verifier internally),
  // then run the whole-program transition system of Fig. 10.
  namespace e = arch::aarch64::enc;
  using arch::aarch64::SysReg;
  arch::aarch64::Asm A;
  A.org(0x80000);
  A.put(e::movz(0, 0xa, 1));
  A.put(e::msr(SysReg::VBAR_EL2, 0));
  A.put(e::movz(0, 0x8000, 1));
  A.put(e::msr(SysReg::HCR_EL2, 0));
  A.put(e::movz(0, 0x3c4, 0));
  A.put(e::msr(SysReg::SPSR_EL2, 0));
  A.put(e::movz(0, 0x9, 1));
  A.put(e::msr(SysReg::ELR_EL2, 0));
  A.put(e::eret());
  A.org(0x90000);
  A.put(e::movz(0, 0));
  A.put(e::hvc(0));
  A.put(e::b(0)); // hang
  A.org(0xa0400);
  A.put(e::movz(0, 42));
  A.put(e::eret());

  frontend::Verifier V(frontend::aarch64());
  V.addCode(A.finish());
  // Reuse the per-address constraints of the case study: defaults for EL2,
  // overrides where the configuration changes.
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  V.at(0x80020)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SPSR_EL2"), BitVec(64, 0x3c4))
      .assume(Reg("HCR_EL2"), BitVec(64, 0x80000000ull));
  V.at(0x90000)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 0));
  V.at(0x90004)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 0));
  V.at(0x90008);
  V.at(0xa0400)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  V.at(0xa0404)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("HCR_EL2"), BitVec(64, 0x80000000ull))
      .constrain(Reg("SPSR_EL2"),
                 [](smt::TermBuilder &TB, const smt::Term *S) {
                   return TB.andTerm(
                       TB.eqTerm(TB.extract(4, 4, S), TB.constBV(1, 0)),
                       TB.eqTerm(TB.extract(3, 2, S), TB.constBV(2, 0b01)));
                 });
  std::string Err;
  if (!V.generateTraces(Err)) {
    std::fprintf(stderr, "trace generation failed: %s\n", Err.c_str());
    return 1;
  }

  itl::MachineState S;
  S.PcReg = "_PC";
  for (int I = 0; I <= 30; ++I)
    S.setReg(arch::aarch64::xreg(unsigned(I)), Value(BitVec(64, 0)));
  for (const char *SR : {"VBAR_EL2", "HCR_EL2", "SPSR_EL2", "ELR_EL2",
                         "ESR_EL2", "SP_EL0", "SP_EL1", "SP_EL2"})
    S.setReg(Reg(SR), Value(BitVec(64, 0)));
  for (const char *F : {"N", "Z", "C", "V", "D", "A", "I", "F"})
    S.setReg(Reg("PSTATE", F), Value(BitVec(1, 0)));
  S.setReg(Reg("PSTATE", "EL"), Value(BitVec(2, 0b10)));
  S.setReg(Reg("PSTATE", "SP"), Value(BitVec(1, 1)));
  S.setReg(Reg("_PC"), Value(BitVec(64, 0x80000)));
  S.Instrs = V.instrMap();

  smt::TermBuilder &TB = V.builder();
  itl::Interpreter Interp(TB);
  auto Paths = Interp.runProgram(S, 64);
  for (const auto &P : Paths) {
    if (P.Out == itl::Outcome::Bottom || P.Out == itl::Outcome::Stuck) {
      std::fprintf(stderr, "execution failed: %s\n", P.Reason.c_str());
      return 1;
    }
    if (P.Out == itl::Outcome::OutOfFuel) {
      // Expected: the program hangs forever at 0x90008.
      uint64_t X0 = P.Final.getReg(Reg("R0"))->asBitVec().toUInt64();
      uint64_t Pc = P.Final.getReg(Reg("_PC"))->asBitVec().toUInt64();
      std::printf("Concrete ITL execution: spinning at 0x%llx with "
                  "x0 = %llu.\n",
                  (unsigned long long)Pc, (unsigned long long)X0);
      if (X0 != 42 || Pc != 0x90008) {
        std::fprintf(stderr, "unexpected final state!\n");
        return 1;
      }
    }
  }
  std::printf("Adequacy check passed: the verified property holds on the "
              "concrete run.\n");
  return 0;
}
