//===- examples/explore_traces.cpp - Interactive Isla exploration ----------------===//
//
// The "interactive exploration using Isla" workflow of §2.8 as a CLI:
// give an opcode (hex) and optional register assumptions, get the ITL
// trace.  Examples:
//
//   explore_traces arm 0x910103ff PSTATE.EL=2 PSTATE.SP=1
//   explore_traces arm 0x910103ff            # five banked-SP cases
//   explore_traces rv  0x00b50633            # add a2, a0, a1
//
//===----------------------------------------------------------------------===//

#include "frontend/Verifier.h"
#include "isla/Executor.h"
#include "models/Models.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace islaris;

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <arm|rv> <opcode-hex> [REG=VAL | REG.FIELD=VAL "
                 "...]\n",
                 argv[0]);
    return 2;
  }
  bool Arm = std::strcmp(argv[1], "arm") == 0;
  const sail::Model &M =
      Arm ? models::aarch64Model() : models::rv64Model();
  uint32_t Opcode = uint32_t(std::strtoul(argv[2], nullptr, 16));

  isla::Assumptions A;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq = Arg.find('=');
    if (Eq == std::string::npos) {
      std::fprintf(stderr, "bad assumption '%s' (want REG=VAL)\n",
                   argv[I]);
      return 2;
    }
    std::string RegName = Arg.substr(0, Eq);
    uint64_t Val = std::strtoull(Arg.c_str() + Eq + 1, nullptr, 0);
    itl::Reg R;
    size_t Dot = RegName.find('.');
    if (Dot == std::string::npos)
      R = itl::Reg(RegName);
    else
      R = itl::Reg(RegName.substr(0, Dot), RegName.substr(Dot + 1));
    const sail::RegisterDecl *RD = M.findRegister(R.Base);
    if (!RD) {
      std::fprintf(stderr, "unknown register %s\n", R.Base.c_str());
      return 2;
    }
    unsigned W = R.hasField() ? RD->fieldWidth(R.Field) : RD->Width;
    A.assume(R, BitVec(W, Val));
  }

  smt::TermBuilder TB;
  isla::Executor Ex(M, TB);
  isla::ExecResult R = Ex.run(isla::OpcodeSpec::concrete(Opcode), A);
  if (!R.Ok) {
    std::fprintf(stderr, "symbolic execution failed: %s\n",
                 R.Error.c_str());
    return 1;
  }
  std::printf("%s\n", R.Trace.toString().c_str());
  std::fprintf(stderr,
               "; %u events, %u path(s), %u branch(es) pruned, "
               "%u solver queries\n",
               R.Stats.Events, R.Stats.Paths, R.Stats.PrunedBranches,
               R.Stats.SolverQueries);
  return 0;
}
