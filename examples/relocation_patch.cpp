//===- examples/relocation_patch.cpp - Partially symbolic opcodes ----------------===//
//
// The §6 pKVM mechanism in isolation: four move-wide instructions whose
// 16-bit immediates are patched at load time with a relocated address.
// Marking the immediate fields symbolic makes Isla produce traces that are
// *parametric in the relocation offset*, so one proof covers every load
// address.  This example prints those parametric traces and then runs the
// full pKVM handler case study.
//
// Build & run:  ./build/examples/relocation_patch
//
//===----------------------------------------------------------------------===//

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"

#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;

int main() {
  namespace e = arch::aarch64::enc;
  frontend::Verifier V(frontend::aarch64());
  V.addCode({{0x1000, e::movz(5, 0)},
             {0x1004, e::movk(5, 0, 1)},
             {0x1008, e::movk(5, 0, 2)},
             {0x100c, e::movk(5, 0, 3)}});
  for (uint64_t Addr : {0x1000ull, 0x1004ull, 0x1008ull, 0x100cull})
    V.symbolicAt(Addr, 20, 5); // the imm16 field is load-time patched

  std::string Err;
  if (!V.generateTraces(Err)) {
    std::fprintf(stderr, "trace generation failed: %s\n", Err.c_str());
    return 1;
  }

  std::printf("Relocation-patched move-wide sequence, traces parametric in "
              "the immediates:\n\n");
  for (uint64_t Addr : {0x1000ull, 0x1004ull, 0x1008ull, 0x100cull}) {
    std::printf("--- instruction at 0x%llx (imm16 = %s) ---\n%s\n\n",
                (unsigned long long)Addr,
                V.opcodeVarsAt(Addr).at(0)->varName().c_str(),
                V.traceAt(Addr)->toString().c_str());
  }

  std::printf("Running the full pKVM handler case study (dispatch, two "
              "hypercalls, 24 system-register interactions, constrained "
              "SPSR eret)...\n");
  frontend::CaseResult R = frontend::runPkvm();
  if (!R.Ok) {
    std::fprintf(stderr, "verification failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("VERIFIED for all relocation offsets: %u instructions, %u ITL "
              "events, %u paths, %.3fs total.\n",
              R.AsmInstrs, R.ItlEvents, R.Proof.PathsVerified,
              R.IslaSeconds + R.Proof.TotalSeconds);
  return 0;
}
